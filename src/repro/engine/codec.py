"""Serialization between :class:`PreparedOperand` and store payloads.

:mod:`repro.persist` is import-fenced below the kernel layer, so it
moves opaque bytes only; this module — living in the engine, above the
fence — owns the byte layout.  The codec string is part of every
entry's validated header: changing the layout means changing the
string, and old entries become structured ``codec`` misses instead of
misdecodes.

The payload is a pickle.  That is safe *here* because entries are only
ever read back through :class:`~repro.persist.OperandStore`, which
verifies a blake2b digest over the exact bytes written — a store
directory is a private cache, not an exchange format, and a tampered
file fails the digest before it reaches the unpickler.  Decoding still
trusts nothing semantically: anything that is not a well-formed
:class:`PreparedOperand` for the requested kernel and matrix is
rejected (``None``), which the engine reports back to the store as a
structured ``decode`` miss.
"""

from __future__ import annotations

import pickle

from repro.formats.csr import CSRMatrix
from repro.kernels.base import PreparedOperand

__all__ = ["OPERAND_CODEC", "decode_operand", "encode_operand"]

#: Store-header codec tag; bump when the pickled shape changes.
OPERAND_CODEC = "operand-pickle/v1"


def encode_operand(operand: PreparedOperand) -> bytes | None:
    """Pickle an operand for spilling; ``None`` if it cannot be.

    An unpicklable operand (a kernel stuffed a live handle into
    ``data``) simply never persists — spilling is an optimization, so
    the failure is absorbed rather than raised.
    """
    try:
        return pickle.dumps(operand, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None


def decode_operand(
    payload: bytes, *, kernel_name: str, csr: CSRMatrix
) -> PreparedOperand | None:
    """Rebuild an operand, or ``None`` if the payload is unusable.

    Checks that the unpickled object is a :class:`PreparedOperand`
    prepared by ``kernel_name`` for a matrix with ``csr``'s shape and
    nnz.  (Content identity beyond that is already guaranteed by the
    store key: the fingerprint is a content hash of the CSR arrays.)
    """
    try:
        operand = pickle.loads(payload)
    except Exception:
        return None
    if not isinstance(operand, PreparedOperand):
        return None
    if operand.kernel_name != kernel_name:
        return None
    if tuple(operand.shape) != tuple(csr.shape) or operand.nnz != csr.nnz:
        return None
    return operand

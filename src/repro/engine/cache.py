"""Keyed LRU cache of :class:`~repro.kernels.base.PreparedOperand`.

Serving traffic means running many SpMVs against a small working set of
matrices.  ``prepare`` (CSR -> bitBSR conversion, analysis passes) costs
orders of magnitude more than one ``run``, so the engine keys each
prepared operand by the *content* of its CSR — two requests carrying
structurally identical matrices share one conversion, and a matrix that
changes in place can never serve a stale operand.

The cache is bounded by a **device-bytes budget** (the sum of
``PreparedOperand.device_bytes`` it keeps resident, modeling GPU memory)
and evicts least-recently-used entries to stay under it.  Hit, miss and
eviction counters are surfaced through :class:`CacheStats` so the
engine's :class:`~repro.engine.engine.EngineStats` can report them the
way :class:`~repro.gpu.counters.ExecutionStats` reports kernel counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, fields

from repro.errors import KernelError
from repro.kernels.base import PreparedOperand
from repro.obs import get_registry

# The canonical fingerprint implementation lives in repro.plan.profile
# (the planner's profile cache and this operand cache must key by the
# same content hash); re-exported here so engine callers are unchanged.
from repro.plan.profile import matrix_fingerprint

__all__ = ["CacheStats", "OperandCache", "matrix_fingerprint"]

#: Default device-bytes budget: 256 MiB, a small slice of either board.
DEFAULT_CACHE_BYTES: int = 256 * 1024 * 1024


@dataclass
class CacheStats:
    """Additive operand-cache counters (``ExecutionStats``-style)."""

    #: Lookups that found a resident operand.
    hits: int = 0
    #: Lookups that required a fresh ``prepare``.
    misses: int = 0
    #: Entries evicted to respect the device-bytes budget.
    evictions: int = 0
    #: Operands larger than the whole budget, served but never retained.
    rejected: int = 0
    #: Entries dropped through :meth:`OperandCache.invalidate` — the
    #: quarantine path (poisoned operands evicted on kernel failure).
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (1.0 = all hits)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class OperandCache:
    """LRU cache of prepared operands under a device-bytes budget.

    ``name`` labels this cache's series in the process-wide metrics
    registry (hit/miss/eviction/rejection counters and the
    resident-bytes gauge); instances sharing a name aggregate.

    Thread-safe: the entry map, the running byte total and the counters
    move together under one lock, so concurrent lookups can never
    observe an entry without its bytes or a hit without its count.
    Metric emission happens after the lock is released (values captured
    while it was held), keeping the lock ordering cache → registry
    acyclic and the critical section free of registry work.
    """

    def __init__(self, device_bytes_budget: int = DEFAULT_CACHE_BYTES, name: str = "default"):
        if device_bytes_budget <= 0:
            raise KernelError("device_bytes_budget must be positive")
        self.device_bytes_budget = int(device_bytes_budget)
        self.name = name
        self._lock = threading.Lock()
        # concurrency: guarded-by(self._lock)
        self._entries: OrderedDict[tuple[str, str], PreparedOperand] = OrderedDict()
        self._resident_bytes = 0  # concurrency: guarded-by(self._lock)
        self.stats = CacheStats()  # concurrency: guarded-by(self._lock)

    # -- observability -------------------------------------------------------
    def _count_event(self, event: str, amount: int = 1) -> None:
        get_registry().counter(
            "operand_cache_events_total",
            "Operand-cache lookups and retention outcomes.",
            labels=("cache", "event"),
        ).inc(amount, cache=self.name, event=event)

    def _publish_residency(self, resident_bytes: int, entries: int) -> None:
        # takes the values instead of reading guarded fields: called
        # after the lock is dropped, with a snapshot captured inside it
        registry = get_registry()
        registry.gauge(
            "operand_cache_resident_bytes",
            "Device bytes held by resident prepared operands.",
            labels=("cache",),
        ).set(resident_bytes, cache=self.name)
        registry.gauge(
            "operand_cache_entries",
            "Prepared operands currently resident.",
            labels=("cache",),
        ).set(entries, cache=self.name)

    # -- bookkeeping ---------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def resident_bytes(self) -> int:
        """Device bytes currently held by resident operands.

        Maintained as a running total through ``put`` / ``invalidate`` /
        ``clear``, so eviction decisions are O(1) per entry instead of
        re-summing every resident operand.
        """
        with self._lock:
            return self._resident_bytes

    def keys(self) -> list[tuple[str, str]]:
        """Resident keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    # -- access --------------------------------------------------------------
    def get(self, key: tuple[str, str]) -> PreparedOperand | None:
        """Fetch an operand, refreshing its recency; counts hit or miss."""
        with self._lock:
            operand = self._entries.get(key)
            if operand is None:
                self.stats.misses += 1
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
        self._count_event("miss" if operand is None else "hit")
        return operand

    def peek(self, key: tuple[str, str]) -> PreparedOperand | None:
        """Side-effect-free read: no counters, no recency refresh.

        Introspection (CLI reporting, tests, debuggers) must not distort
        the cache it is observing — :meth:`get` counts a hit/miss and
        moves the entry to the MRU end, so using it to *look* changes
        both the stats and the next eviction victim.
        """
        with self._lock:
            return self._entries.get(key)

    def put(self, key: tuple[str, str], operand: PreparedOperand) -> None:
        """Insert an operand, evicting LRU entries to honor the budget.

        An operand larger than the entire budget is never retained (it
        would evict everything and still not fit); it is counted in
        ``stats.rejected`` and the caller simply keeps its reference for
        the current execution.  If the same key held a smaller resident
        operand, dropping it counts as an eviction — the entry leaves
        the cache to respect the budget, exactly like an LRU eviction.
        """
        events: list[str] = []
        with self._lock:
            if operand.device_bytes > self.device_bytes_budget:
                displaced = self._entries.pop(key, None)
                if displaced is not None:
                    self._resident_bytes -= displaced.device_bytes
                    self.stats.evictions += 1
                    events.append("eviction")
                self.stats.rejected += 1
                events.append("rejected")
            else:
                replaced = self._entries.get(key)
                if replaced is not None:
                    self._resident_bytes -= replaced.device_bytes
                self._entries[key] = operand
                self._entries.move_to_end(key)
                self._resident_bytes += operand.device_bytes
                while self._resident_bytes > self.device_bytes_budget:
                    evicted_key, evicted = self._entries.popitem(last=False)
                    self._resident_bytes -= evicted.device_bytes
                    self.stats.evictions += 1
                    events.append("eviction")
                    if evicted_key == key:  # cannot happen (size checked), safety net
                        break
            resident, count = self._resident_bytes, len(self._entries)
        for event in events:
            self._count_event(event)
        self._publish_residency(resident, count)

    def invalidate(self, key: tuple[str, str]) -> bool:
        """Drop one entry (e.g. a poisoned operand); True if it was resident."""
        with self._lock:
            dropped = self._entries.pop(key, None)
            if dropped is None:
                return False
            self._resident_bytes -= dropped.device_bytes
            self.stats.invalidations += 1
            resident, count = self._resident_bytes, len(self._entries)
        self._count_event("invalidation")
        self._publish_residency(resident, count)
        return True

    def clear(self) -> None:
        """Drop every resident operand (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._resident_bytes = 0
        self._publish_residency(0, 0)

"""Keyed LRU cache of :class:`~repro.kernels.base.PreparedOperand`.

Serving traffic means running many SpMVs against a small working set of
matrices.  ``prepare`` (CSR -> bitBSR conversion, analysis passes) costs
orders of magnitude more than one ``run``, so the engine keys each
prepared operand by the *content* of its CSR — two requests carrying
structurally identical matrices share one conversion, and a matrix that
changes in place can never serve a stale operand.

The cache is bounded by a **device-bytes budget** (the sum of
``PreparedOperand.device_bytes`` it keeps resident, modeling GPU memory)
and evicts least-recently-used entries to stay under it.  Hit, miss and
eviction counters are surfaced through :class:`CacheStats` so the
engine's :class:`~repro.engine.engine.EngineStats` can report them the
way :class:`~repro.gpu.counters.ExecutionStats` reports kernel counters.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, fields

from repro.errors import KernelError
from repro.formats.csr import CSRMatrix
from repro.kernels.base import PreparedOperand

__all__ = ["CacheStats", "OperandCache", "matrix_fingerprint"]

#: Default device-bytes budget: 256 MiB, a small slice of either board.
DEFAULT_CACHE_BYTES: int = 256 * 1024 * 1024


def matrix_fingerprint(csr: CSRMatrix) -> str:
    """Content hash of a CSR matrix (shape + all three arrays).

    Blake2b over the raw bytes: structurally identical matrices map to
    the same key regardless of object identity, and any in-place edit of
    pointers, indices or values changes the key.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(csr.shape).encode())
    for array in (csr.row_pointers, csr.col_indices, csr.values):
        h.update(array.tobytes())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Additive operand-cache counters (``ExecutionStats``-style)."""

    #: Lookups that found a resident operand.
    hits: int = 0
    #: Lookups that required a fresh ``prepare``.
    misses: int = 0
    #: Entries evicted to respect the device-bytes budget.
    evictions: int = 0
    #: Operands larger than the whole budget, served but never retained.
    rejected: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (1.0 = all hits)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class OperandCache:
    """LRU cache of prepared operands under a device-bytes budget."""

    def __init__(self, device_bytes_budget: int = DEFAULT_CACHE_BYTES):
        if device_bytes_budget <= 0:
            raise KernelError("device_bytes_budget must be positive")
        self.device_bytes_budget = int(device_bytes_budget)
        self._entries: OrderedDict[tuple[str, str], PreparedOperand] = OrderedDict()
        self.stats = CacheStats()

    # -- bookkeeping ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._entries

    @property
    def resident_bytes(self) -> int:
        """Device bytes currently held by resident operands."""
        return sum(op.device_bytes for op in self._entries.values())

    def keys(self) -> list[tuple[str, str]]:
        """Resident keys, least- to most-recently used."""
        return list(self._entries)

    # -- access --------------------------------------------------------------
    def get(self, key: tuple[str, str]) -> PreparedOperand | None:
        """Fetch an operand, refreshing its recency; counts hit or miss."""
        operand = self._entries.get(key)
        if operand is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return operand

    def put(self, key: tuple[str, str], operand: PreparedOperand) -> None:
        """Insert an operand, evicting LRU entries to honor the budget.

        An operand larger than the entire budget is never retained (it
        would evict everything and still not fit); it is counted in
        ``stats.rejected`` and the caller simply keeps its reference for
        the current execution.
        """
        if operand.device_bytes > self.device_bytes_budget:
            self._entries.pop(key, None)
            self.stats.rejected += 1
            return
        self._entries[key] = operand
        self._entries.move_to_end(key)
        while self.resident_bytes > self.device_bytes_budget:
            evicted_key, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if evicted_key == key:  # cannot happen (size checked), safety net
                break

    def invalidate(self, key: tuple[str, str]) -> bool:
        """Drop one entry (e.g. a poisoned operand); True if it was resident."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every resident operand (counters are preserved)."""
        self._entries.clear()

"""Batched SpMV execution engine with operand caching.

The apps layer (PageRank, CG, the recommender) and any serving workload
issue *streams* of SpMV requests, most of them against matrices they
have seen before.  A bare ``kernel.prepare() + kernel.run()`` per
request pays the format conversion every time; :class:`SpMVEngine`
amortizes it twice over:

* an :class:`~repro.engine.cache.OperandCache` keyed by the CSR's
  content hash keeps prepared operands resident under a device-bytes
  budget, so repeat requests skip ``prepare`` entirely;
* :meth:`SpMVEngine.spmv_many` micro-batches same-matrix requests into
  one multi-vector :meth:`~repro.kernels.base.SpMVKernel.run_many`
  execution, so one bitBSR decode (or CSR gather) serves the whole
  batch.  Results are returned in request order and are bitwise-equal
  to per-vector :meth:`~repro.kernels.base.SpMVKernel.run` calls.

Every batch honors the PR-1 graceful-degradation contract: batches run
through :func:`repro.exec.execute_chain` — a
:class:`~repro.errors.ReproError` at any stage abandons the kernel,
records a :class:`~repro.exec.DegradationEvent`, drops the (possibly
poisoned) cache entry, and advances down the fallback chain — degrading
throughput, never correctness.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, fields

import numpy as np

from repro.errors import KernelError, ReproError
from repro.engine.cache import DEFAULT_CACHE_BYTES, OperandCache, matrix_fingerprint
from repro.engine.codec import OPERAND_CODEC, decode_operand, encode_operand
from repro.exec import (
    ChainExhaustedError,
    ExecutionMode,
    default_chain,
    execute_chain,
    verify_operand,
)
from repro.exec.middleware import FaultHook, stage_span
from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.kernels.base import PreparedOperand, get_kernel
from repro.obs import get_registry
from repro.resilience import ResiliencePolicy

__all__ = ["EngineStats", "SpMVEngine"]


def _count_requests(kernel: str, amount: int) -> None:
    get_registry().counter(
        "engine_requests_total",
        "Individual SpMV requests served by the engine.",
        labels=("kernel",),
    ).inc(amount, kernel=kernel)


@dataclass
class EngineStats:
    """Counters for one engine's lifetime (``ExecutionStats``-style)."""

    #: Individual SpMV requests served (one per input vector).
    requests: int = 0
    #: ``run_many`` executions issued (one per same-matrix micro-batch).
    batches: int = 0
    #: Vectors that rode in a batch of size >= 2 (the amortized ones).
    batched_vectors: int = 0
    #: ``prepare`` invocations (cache misses and fallback re-prepares).
    prepare_calls: int = 0
    #: Host seconds spent converting formats.
    prepare_seconds: float = 0.0
    #: Host seconds spent executing kernels.
    run_seconds: float = 0.0
    #: DegradationEvents from abandoned kernel attempts, in order.
    degradation_log: list = field(default_factory=list)
    #: Merged simulator counters (populated by ``simulate=True`` runs).
    execution: ExecutionStats = field(default_factory=ExecutionStats)

    @property
    def degradations(self) -> int:
        return len(self.degradation_log)

    @property
    def amortized_run_seconds(self) -> float:
        """Mean kernel-execution seconds per served request."""
        return self.run_seconds / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, ExecutionStats):
                value = value.as_dict()
            elif isinstance(value, list):
                value = list(value)
            out[f.name] = value
        return out


class SpMVEngine:
    """Cached, micro-batching SpMV executor over the kernel registry.

    ``kernel`` names the preferred kernel; when ``degrade`` is true the
    engine extends it into the PR-1 fallback chain (preferred kernel
    first, then the remaining registry-derived
    :func:`~repro.exec.default_chain` members) and walks it per batch.
    ``deep_verify`` re-runs the deep
    format verifiers on every freshly prepared operand — cache hits skip
    it, matching the "amortize verification" contract of PR 1.

    ``resilience`` installs a :class:`~repro.resilience.ResiliencePolicy`:
    a per-batch deadline, same-kernel retries on retryable causes, and
    per-kernel circuit breakers the chain walker consults before
    attempting a kernel.  The policy's breaker trip and the engine's
    poisoned-entry cache eviction fire on the same failure, so a sick
    kernel is quarantined and its cached operand dropped together.
    ``None`` (the default) leaves every request on the exact pre-policy
    path — results are bit-identical.

    ``store`` installs a :class:`~repro.persist.OperandStore` as a
    durable tier under the in-memory cache: an operand-cache miss
    checks disk *before* converting, and every fresh ``prepare`` spills
    its result, so converted formats survive process restarts and can
    be shared by engines pointing at the same directory.  Disk loads
    are fully validated (frame digest by the store, kernel/shape/nnz by
    the codec) and any invalid entry degrades to a counted miss plus
    ordinary re-conversion — the store can slow a cold start down to at
    worst the no-store path, never break it.  ``None`` (the default)
    is the exact memory-only behavior.

    ``planner`` installs a :class:`~repro.plan.Planner`: each batch
    walks the planner's per-matrix :class:`~repro.plan.ExecutionPlan`
    instead of the static ``chain``, the plan is cached next to the
    prepared operand (same fingerprint key) and both are invalidated
    together when a kernel poisons its operand, and every successful
    batch feeds its measured per-vector seconds back through
    :meth:`~repro.plan.Planner.observe` so rankings improve as traffic
    accumulates.  ``None`` (the default) leaves every request on the
    exact static-chain path — results are bit-identical.
    """

    def __init__(
        self,
        kernel: str = "spaden",
        *,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        chain: tuple[str, ...] | None = None,
        degrade: bool = True,
        deep_verify: bool = False,
        resilience: ResiliencePolicy | None = None,
        planner=None,
        store=None,
    ):
        get_kernel(kernel)  # fail fast on unknown names
        self.kernel_name = kernel
        self.store = store
        if chain is not None:
            self.chain = tuple(chain)
        elif degrade:
            self.chain = (kernel,) + tuple(k for k in default_chain() if k != kernel)
        else:
            self.chain = (kernel,)
        if not self.chain:
            raise KernelError("empty kernel chain")
        self.deep_verify = deep_verify
        self.resilience = resilience
        self.planner = planner
        self.cache = OperandCache(cache_bytes, name=f"engine:{kernel}")
        # Guards the engine's own bookkeeping (stats, submit queue) only.
        # It is NEVER held across prepare/execute_chain, so concurrent
        # batches still run in parallel; the cache has its own lock.
        self._lock = threading.Lock()
        self.stats = EngineStats()  # concurrency: guarded-by(self._lock)
        # concurrency: guarded-by(self._lock)
        self._queue: list[tuple[CSRMatrix, np.ndarray]] = []
        # per-fingerprint plans from self.planner, invalidated together
        # with the operand cache entry they were planned for
        # concurrency: guarded-by(self._lock)
        self._plans: dict = {}

    # -- operand management --------------------------------------------------
    def _prepared(self, kernel_name: str, csr: CSRMatrix, fingerprint: str) -> PreparedOperand:
        """Cache-through prepare: a hit skips both conversion and verify.

        With a persistent ``store``, the miss path checks disk before
        converting (a disk hit repopulates the memory tier and skips
        ``prepare`` entirely — it does not count in
        ``stats.prepare_calls``), and a fresh ``prepare`` spills its
        result after the memory tier takes it.  The spilled bytes are a
        pristine pre-execution snapshot: fault hooks mutate the *live*
        operand, never the disk copy, so a later reload heals poisoning.
        """
        key = (kernel_name, fingerprint)
        operand = self.cache.get(key)
        if operand is not None:
            return operand
        operand = self._load_persisted(kernel_name, csr, fingerprint)
        if operand is not None:
            self.cache.put(key, operand)
            return operand
        kernel = get_kernel(kernel_name)
        start = time.perf_counter()
        operand = kernel.prepare(csr)
        elapsed = time.perf_counter() - start
        with self._lock:
            self.stats.prepare_calls += 1
            self.stats.prepare_seconds += elapsed
        if self.deep_verify:
            verify_operand(kernel, operand)
        self.cache.put(key, operand)
        self._spill(kernel_name, fingerprint, operand)
        return operand

    def _load_persisted(
        self, kernel_name: str, csr: CSRMatrix, fingerprint: str
    ) -> PreparedOperand | None:
        """Disk tier of the miss path; any failure is a counted miss."""
        if self.store is None:
            return None
        payload = self.store.get(kernel_name, fingerprint, codec=OPERAND_CODEC)
        if payload is None:
            return None
        operand = decode_operand(payload, kernel_name=kernel_name, csr=csr)
        if operand is None:
            # frame-valid bytes the codec could not use: demote the
            # store's hit to a structured miss and drop the entry
            self.store.discard(kernel_name, fingerprint, reason="decode")
        return operand

    def _spill(self, kernel_name: str, fingerprint: str, operand: PreparedOperand) -> None:
        """Persist a fresh operand; failures are absorbed (and counted)."""
        if self.store is None:
            return
        payload = encode_operand(operand)
        if payload is not None:
            self.store.put(kernel_name, fingerprint, payload, codec=OPERAND_CODEC)

    def warm(self, csr: CSRMatrix) -> PreparedOperand:
        """Prepare the preferred kernel's operand without executing.

        The serving front-end calls this at matrix-registration time so
        a tenant's first request never pays the conversion: the operand
        comes from memory, disk, or one fresh ``prepare`` (spilled for
        the next process).  Counts neither a request nor a batch.
        """
        return self._prepared(self.kernel_name, csr, matrix_fingerprint(csr))

    def _invalidate_operand(self, kernel_name: str, fingerprint: str) -> None:
        """Drop a poisoned cached operand *and* the matrix's cached plan.

        The plan ranked kernels against evidence that predates the
        failure; dropping it with the operand means the next batch
        re-plans with the planner's current EWMA table (which the
        failure's latency just updated).  With no planner the plan map
        is empty and this is exactly the old cache eviction.

        The persistent store is deliberately *not* touched: its copy is
        a pre-execution snapshot serialized before any kernel ran, so
        it cannot carry runtime poisoning — re-loading it is the cheap
        way back to a healthy operand.
        """
        self.cache.invalidate((kernel_name, fingerprint))
        with self._lock:
            self._plans.pop(fingerprint, None)

    def _plan_for(self, csr: CSRMatrix, fingerprint: str, planner):
        """The plan a batch should walk (cached for the engine's own planner)."""
        if planner is None:
            return None
        if planner is self.planner:
            with self._lock:
                plan = self._plans.get(fingerprint)
            if plan is not None:
                return plan
            plan = planner.plan(csr, fingerprint=fingerprint)
            with self._lock:
                self._plans[fingerprint] = plan
            return plan
        # a per-call override (serve's per-tenant planners) is not
        # co-cached: the override owns its own profile cache
        return planner.plan(csr, fingerprint=fingerprint)

    # -- execution -----------------------------------------------------------
    def _execute_batch(
        self,
        csr: CSRMatrix,
        fingerprint: str,
        X: np.ndarray,
        simulate: bool,
        faults: tuple[FaultHook, ...] = (),
        planner=None,
    ) -> np.ndarray:
        """Run one same-matrix batch down the degradation chain.

        The chain walk itself lives in :func:`repro.exec.execute_chain`;
        the engine contributes its cache-through ``prepare`` hook, the
        poisoned-entry eviction on abandoned attempts, and — when a
        :class:`~repro.resilience.ResiliencePolicy` is installed — the
        batch deadline, the retry policy and the breaker board.
        """
        k = X.shape[0]
        policy = self.resilience
        effective_planner = planner if planner is not None else self.planner
        plan = self._plan_for(csr, fingerprint, effective_planner)

        def pick_mode(kernel) -> ExecutionMode:
            # simulate only where one simulated decode serves the whole
            # batch; a kernel without the batched simulator runs the
            # plain numeric batch path, exactly as before
            if simulate and kernel.capabilities.simulate_batch:
                return ExecutionMode.SIMULATED
            return ExecutionMode.NUMERIC

        try:
            with stage_span(
                "engine.batch", kernel=self.kernel_name, k=k, simulate=simulate
            ) as batch_span:
                result = execute_chain(
                    csr,
                    X,
                    plan if plan is not None else self.chain,
                    mode=pick_mode,
                    faults=faults,
                    prepare=lambda name: self._prepared(name, csr, fingerprint),
                    # never let a poisoned operand (or its stale plan)
                    # serve the next request
                    invalidate=lambda name: self._invalidate_operand(name, fingerprint),
                    deep_verify=policy.deep_verify if policy is not None else False,
                    deadline=policy.new_deadline() if policy is not None else None,
                    retry=policy.retry if policy is not None else None,
                    breakers=policy.breakers if policy is not None else None,
                )
                batch_span.attributes["served_by"] = result.kernel
        except ChainExhaustedError as exc:
            with self._lock:
                self.stats.degradation_log.extend(exc.events)
            raise
        if effective_planner is not None:
            # feedback: measured per-batch seconds, per-vector normalized
            effective_planner.observe(result.kernel, result.run_seconds, vectors=k)
        with self._lock:
            self.stats.run_seconds += result.run_seconds
            self.stats.batches += 1
            if k >= 2:
                self.stats.batched_vectors += k
            self.stats.degradation_log.extend(result.events)
            if result.stats is not None:
                self.stats.execution.merge(result.stats)
        registry = get_registry()
        registry.counter(
            "engine_batches_total",
            "Micro-batched executions issued by the engine.",
            labels=("kernel",),
        ).inc(kernel=self.kernel_name)
        registry.histogram(
            "engine_batch_size",
            "Vectors per engine micro-batch.",
            labels=("kernel",),
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        ).observe(k, kernel=self.kernel_name)
        return result.y

    # -- public API ----------------------------------------------------------
    def spmv(self, csr: CSRMatrix, x: np.ndarray, *, simulate: bool = False) -> np.ndarray:
        """Synchronous single SpMV through the cache (batch of one).

        A shape-invalid ``x`` is rejected *before* it is counted:
        ``stats.requests`` and ``engine_requests_total`` only ever cover
        requests the engine actually attempted to serve.
        """
        x = np.asarray(x)
        if x.ndim != 1 or x.shape[0] != csr.ncols:
            raise KernelError(f"x has shape {x.shape}, expected ({csr.ncols},)")
        with self._lock:
            self.stats.requests += 1
        _count_requests(self.kernel_name, 1)
        fingerprint = matrix_fingerprint(csr)
        Y = self._execute_batch(csr, fingerprint, x[None, :].astype(np.float32), simulate)
        return Y[0]

    def spmv_many(
        self,
        requests: list[tuple[CSRMatrix, np.ndarray]],
        *,
        simulate: bool = False,
        return_errors: bool = False,
        faults: tuple[FaultHook, ...] = (),
        planner=None,
    ) -> list[np.ndarray]:
        """Serve a queue of ``(matrix, x)`` requests with micro-batching.

        ``planner`` overrides the engine's configured planner for this
        call (the serving front-end routes per-tenant planner overrides
        through it); ``None`` keeps the engine's own.

        Requests carrying content-identical matrices are grouped (in
        first-seen order, each group's vectors in request order) and
        executed as one multi-vector ``run_many``; results come back in
        the original request order and each equals the corresponding
        per-vector :meth:`spmv` bitwise.

        With ``return_errors=True`` a failing micro-batch (chain
        exhausted, deadline missed) does not abort the whole call:
        every request of the failed group gets the
        :class:`~repro.errors.ReproError` *instance* at its position
        and the remaining groups still execute — no request is ever
        silently dropped.  A *shape-invalid* request follows the same
        contract: it gets a per-request :class:`~repro.errors.KernelError`
        at its position and never aborts the grouping loop, so a
        malformed vector can never wedge a :meth:`flush` queue (with
        ``return_errors=False`` the first invalid request raises before
        anything executes or is counted).  Only requests that pass
        validation are counted in ``stats.requests`` /
        ``engine_requests_total``.  ``faults`` is the fault-injection
        seam, forwarded to every attempt (the chaos harness drives it).
        """
        requests = list(requests)
        results: list[np.ndarray | ReproError | None] = [None] * len(requests)
        groups: dict[str, dict] = {}
        admitted = 0
        for position, (csr, x) in enumerate(requests):
            x = np.asarray(x)
            if x.ndim != 1 or x.shape[0] != csr.ncols:
                error = KernelError(
                    f"request {position}: x has shape {x.shape}, expected ({csr.ncols},)"
                )
                if not return_errors:
                    raise error
                results[position] = error
                continue
            admitted += 1
            fingerprint = matrix_fingerprint(csr)
            group = groups.setdefault(fingerprint, {"csr": csr, "positions": [], "xs": []})
            group["positions"].append(position)
            group["xs"].append(x.astype(np.float32))
        with self._lock:
            self.stats.requests += admitted
        if admitted:
            _count_requests(self.kernel_name, admitted)
        for fingerprint, group in groups.items():
            X = np.stack(group["xs"]) if group["xs"] else np.zeros((0, 0), np.float32)
            try:
                Y = self._execute_batch(
                    group["csr"], fingerprint, X, simulate, faults, planner=planner
                )
            except ReproError as exc:
                if not return_errors:
                    raise
                for position in group["positions"]:
                    results[position] = exc
                continue
            for j, position in enumerate(group["positions"]):
                results[position] = Y[j]
        return results

    def submit(self, csr: CSRMatrix, x: np.ndarray) -> int:
        """Queue one request for the next :meth:`flush`; returns its index.

        Shape validation happens *here*, at submission time: a malformed
        vector raises a :class:`~repro.errors.KernelError` to the
        submitter and never enters the queue.  This is the first half of
        the poison-pill fix — a request that cannot possibly execute
        must not be able to wedge :meth:`flush`'s restore path (the
        second half is :meth:`spmv_many` routing validation failures
        through ``return_errors``, which covers entries that become
        invalid later, e.g. a matrix mutated in place after submission).
        """
        x = np.asarray(x)
        if x.ndim != 1 or x.shape[0] != csr.ncols:
            raise KernelError(
                f"submitted x has shape {x.shape}, expected ({csr.ncols},)"
            )
        entry = (csr, x)
        with self._lock:
            self._queue.append(entry)
            return len(self._queue) - 1

    def flush(
        self,
        *,
        simulate: bool = False,
        return_errors: bool = False,
        faults: tuple[FaultHook, ...] = (),
    ) -> list[np.ndarray]:
        """Execute every queued request as micro-batches; clears the queue.

        A mid-flush failure can never lose requests: if the underlying
        :meth:`spmv_many` raises (``return_errors=False``, one group's
        chain exhausted or deadline missed), the *entire* flushed queue
        is restored — ahead of anything submitted meanwhile — before the
        error propagates, so the caller may fix the condition and flush
        again.  With ``return_errors=True`` the queue is consumed and
        each failed request carries its error in the result list
        instead — including requests that fail *validation* (they get a
        per-request :class:`~repro.errors.KernelError`), so the queue
        always drains and a malformed entry can never be requeued
        forever by the restore path.
        """
        with self._lock:
            queue, self._queue = self._queue, []
        if not queue:
            return []
        try:
            return self.spmv_many(
                queue, simulate=simulate, return_errors=return_errors, faults=faults
            )
        except BaseException:
            # requeue every request of this flush (results were never
            # delivered, so re-running them is safe), preserving order
            # relative to anything submitted while we were failing
            with self._lock:
                self._queue = queue + self._queue
            raise

    def operator(self, csr: CSRMatrix):
        """Bind a matrix into a plain ``x -> y`` callable for the apps.

        The content hash is computed once; every call reuses the cached
        operand, so iterative solvers pay ``prepare`` exactly once.

        The binding is guarded against the stale-fingerprint hazard:
        every call runs a cheap shape/nnz check against the matrix as it
        was at bind time, and on a mismatch (the caller rebound the
        CSR's storage arrays in place) the fingerprint is recomputed so
        the engine prepares — and caches — the *current* contents
        instead of silently serving the old operand.  A mutation that
        preserves both shape and nnz (e.g. overwriting ``values``
        element-wise) is undetectable at this cost and unsupported:
        build a new :class:`~repro.formats.csr.CSRMatrix` (or call
        :meth:`spmv` directly, which fingerprints per request) instead.
        """
        state = {
            "fingerprint": matrix_fingerprint(csr),
            "shape": csr.shape,
            "nnz": csr.nnz,
        }

        def bound_spmv(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x)
            if x.ndim != 1 or x.shape[0] != csr.ncols:
                raise KernelError(f"x has shape {x.shape}, expected ({csr.ncols},)")
            if csr.shape != state["shape"] or csr.nnz != state["nnz"]:
                state["fingerprint"] = matrix_fingerprint(csr)
                state["shape"], state["nnz"] = csr.shape, csr.nnz
            with self._lock:
                self.stats.requests += 1
            _count_requests(self.kernel_name, 1)
            Y = self._execute_batch(
                csr, state["fingerprint"], x[None, :].astype(np.float32), False
            )
            return Y[0]

        bound_spmv.__doc__ = f"Engine-cached SpMV bound to a {csr.shape} matrix."
        return bound_spmv

    def run_report(self, meta: dict | None = None):
        """This engine's state folded into a :class:`~repro.obs.RunReport`.

        Merges the engine counters, the merged simulator counters, the
        operand-cache counters and the degradation log with the
        process-wide span timeline and metrics registry.
        """
        from repro.obs import build_run_report

        base = {"kernel": self.kernel_name, "chain": list(self.chain)}
        if self.planner is not None:
            base["planner"] = getattr(self.planner, "name", type(self.planner).__name__)
        base.update(meta or {})
        return build_run_report(meta=base, engine=self)

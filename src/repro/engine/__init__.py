"""Batched SpMV engine: operand caching + same-matrix micro-batching.

High-level entry point for applications that issue streams of SpMV
requests.  See :mod:`repro.engine.engine` for the executor and
:mod:`repro.engine.cache` for the keyed LRU operand cache.
"""

from repro.engine.cache import (
    DEFAULT_CACHE_BYTES,
    CacheStats,
    OperandCache,
    matrix_fingerprint,
)
from repro.engine.codec import OPERAND_CODEC, decode_operand, encode_operand
from repro.engine.engine import EngineStats, SpMVEngine

__all__ = [
    "CacheStats",
    "DEFAULT_CACHE_BYTES",
    "EngineStats",
    "OPERAND_CODEC",
    "OperandCache",
    "SpMVEngine",
    "decode_operand",
    "encode_operand",
    "matrix_fingerprint",
]

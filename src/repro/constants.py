"""Architectural constants shared across the Spaden reproduction.

These mirror the fixed parameters of the paper (ICPP'24, §2.2 and §4.2):
a 32-lane warp, a 16x16 WMMA fragment decomposed into four 8x8 portions,
and an 8x8 sparse block encoded by a 64-bit bitmap.
"""

from __future__ import annotations

#: Number of lanes (threads) in a warp. All simulated kernels are written
#: against lockstep execution of exactly this many lanes.
WARP_SIZE: int = 32

#: Side length of the square WMMA fragment (``<M, N, K> = <16, 16, 16>``).
FRAGMENT_DIM: int = 16

#: Side length of one fragment portion. The 16x16 fragment is four of these.
PORTION_DIM: int = 8

#: Side length of a bitBSR block.  Chosen in the paper so one 64-bit
#: unsigned integer covers the whole block (8 * 8 = 64 bits) and two blocks
#: tile a fragment diagonally.
BLOCK_DIM: int = 8

#: Elements per bitBSR block; equals the bit width of the bitmap.
BLOCK_SIZE: int = BLOCK_DIM * BLOCK_DIM

#: Number of 8x8 blocks placed diagonally on one fragment (Fig. 5).
BLOCKS_PER_FRAGMENT: int = FRAGMENT_DIM // BLOCK_DIM

#: Elements each lane owns inside one 8x8 portion (two consecutive ones).
ELEMENTS_PER_LANE: int = 2

#: Registers per lane in a 16x16 accumulator fragment (``fragment.x[0..7]``).
REGISTERS_PER_LANE: int = 8

#: Memory transaction (sector) granularity used by the coalescing model, in
#: bytes.  Matches the 32-byte sectors of NVIDIA's L1/L2.
SECTOR_BYTES: int = 32

#: Full cache-line granularity (four sectors).
CACHE_LINE_BYTES: int = 128

#: Bytes per value for the precisions the paper evaluates.
FLOAT32_BYTES: int = 4
FLOAT16_BYTES: int = 2
INDEX_BYTES: int = 4
BITMAP_BYTES: int = 8

"""On-disk persistence tier for prepared operands.

:mod:`repro.engine`'s :class:`~repro.engine.cache.OperandCache` is
memory-only — every process restart re-pays the CSR -> bitBSR
conversion tax (the paper's Fig. 10a cost) for every registered matrix.
:class:`~repro.persist.store.OperandStore` makes the conversion durable:
a content-addressed directory of atomically-written entries keyed by
``(kernel, matrix_fingerprint)`` plus a schema version, with
corruption-tolerant loads (every invalid entry is a *counted structured
miss*, never a crash, never wrong bytes) and an LRU-by-mtime size
budget.

The package is import-fenced to the standard library plus
:mod:`repro.errors` and :mod:`repro.obs` — it never sees kernels or
formats, so it deals only in opaque byte payloads.  Serialization
to/from :class:`~repro.kernels.base.PreparedOperand` lives in the
engine layer (:mod:`repro.engine.codec`), which sits above the fence.
"""

from repro.persist.store import (
    DEFAULT_STORE_BYTES,
    SCHEMA_VERSION,
    OperandStore,
    StoreStats,
)

__all__ = [
    "DEFAULT_STORE_BYTES",
    "SCHEMA_VERSION",
    "OperandStore",
    "StoreStats",
]

"""Content-addressed on-disk store of opaque operand payloads.

File layout of one entry (``<kernel>__<fingerprint>.operand``)::

    magic   4 bytes   b"RPRS"
    schema  u32 LE    store schema version
    hlen    u32 LE    header length in bytes
    header  JSON      {kernel, fingerprint, codec, payload_bytes, digest}
    payload bytes     exactly payload_bytes, blake2b-16 == digest

Every load re-validates the whole frame: magic, schema, header shape,
payload length, payload digest and the key/codec the caller asked for.
Anything that does not check out is a **structured miss** — counted by
reason, the bad file unlinked, ``None`` returned so the caller falls
through to re-conversion.  A store read can therefore never crash the
engine and never serve bytes that differ from what was written.

Writes are atomic (temp file + ``os.replace``) so concurrent readers —
including other processes sharing the directory — observe either the
old complete entry or the new complete entry, never a torn one.  The
size budget is enforced at put time by evicting least-recently-*used*
entries (hits refresh mtime), mirroring the in-memory cache's LRU.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.errors import PersistError
from repro.obs import get_registry

__all__ = ["DEFAULT_STORE_BYTES", "SCHEMA_VERSION", "OperandStore", "StoreStats"]

#: Bump whenever the entry frame or any codec's byte layout changes;
#: entries written under another version are structured misses.
SCHEMA_VERSION: int = 1

#: Default on-disk budget: 1 GiB of spilled operands.
DEFAULT_STORE_BYTES: int = 1024 * 1024 * 1024

_MAGIC = b"RPRS"
_FIXED = len(_MAGIC) + 4 + 4  # magic + schema u32 + header-length u32
_SUFFIX = ".operand"
_SAFE = re.compile(r"[^A-Za-z0-9._-]")

#: Miss reasons that mean the entry existed but its bytes were damaged
#: (as opposed to absent, version-skewed or written by another codec).
_CORRUPT_REASONS = frozenset(
    {"truncated", "magic", "header", "digest", "key-mismatch"}
)


def _digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


@dataclass
class StoreStats:
    """Additive counters for one :class:`OperandStore` instance.

    Process-local (each engine sharing a directory keeps its own), so a
    restart test can reconcile exactly: a fresh process starts from all
    zeros and every disk round trip shows up here.
    """

    #: Loads that returned a validated payload.
    hits: int = 0
    #: Loads that returned nothing, for any reason (``miss_reasons``).
    misses: int = 0
    #: Entries unlinked to respect the size budget.
    evictions: int = 0
    #: Misses whose entry existed but failed frame/digest validation.
    corrupt: int = 0
    #: Payloads durably written.
    puts: int = 0
    #: Puts abandoned on I/O failure (disk full, permissions, ...).
    put_errors: int = 0
    #: Payloads larger than the whole budget, never written.
    rejected: int = 0
    #: Per-reason miss breakdown (``absent``, ``schema``, ``codec``,
    #: ``truncated``, ``magic``, ``header``, ``digest``,
    #: ``key-mismatch``, ``decode``).
    miss_reasons: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class OperandStore:
    """Durable byte store keyed by ``(kernel, fingerprint)``.

    ``name`` labels this store's series in the process-wide metrics
    registry; instances sharing a name aggregate.  Thread-safe: stats
    and directory mutations happen under one lock, with metric emission
    after it is released (values captured while held), matching the
    operand cache's lock-ordering discipline.  Cross-process safety
    comes from atomic replace, full-frame validation on read, and
    treating a concurrently-evicted file as an ordinary ``absent`` miss.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        size_budget_bytes: int = DEFAULT_STORE_BYTES,
        name: str = "default",
        schema_version: int = SCHEMA_VERSION,
    ):
        if size_budget_bytes <= 0:
            raise PersistError("size_budget_bytes must be positive")
        if not name:
            raise PersistError("store name must be non-empty")
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise PersistError(f"cannot create store root {self.root}: {exc}") from exc
        self.size_budget_bytes = int(size_budget_bytes)
        self.name = name
        self.schema_version = int(schema_version)
        self._lock = threading.Lock()
        self.stats = StoreStats()  # concurrency: guarded-by(self._lock)
        self._tmp_seq = 0  # concurrency: guarded-by(self._lock)

    # -- observability -------------------------------------------------------
    def _emit(self, events: list[tuple[str, dict]]) -> None:
        """Emit captured counter events; called with the lock released."""
        registry = get_registry()
        for metric, labels in events:
            if metric == "hit":
                registry.counter(
                    "persist_hits_total",
                    "Operand-store loads served from disk.",
                    labels=("store",),
                ).inc(store=self.name)
            elif metric == "miss":
                registry.counter(
                    "persist_misses_total",
                    "Operand-store loads that fell through, by reason.",
                    labels=("store", "reason"),
                ).inc(store=self.name, reason=labels["reason"])
            elif metric == "corrupt":
                registry.counter(
                    "persist_corrupt_total",
                    "Store entries that existed but failed validation.",
                    labels=("store",),
                ).inc(store=self.name)
            elif metric == "eviction":
                registry.counter(
                    "persist_evictions_total",
                    "Store entries unlinked to respect the size budget.",
                    labels=("store",),
                ).inc(store=self.name)
            elif metric == "put":
                registry.counter(
                    "persist_puts_total",
                    "Operand-store write attempts, by outcome.",
                    labels=("store", "outcome"),
                ).inc(store=self.name, outcome=labels["outcome"])

    def _publish_residency(self, resident_bytes: int, entries: int) -> None:
        registry = get_registry()
        registry.gauge(
            "persist_resident_bytes",
            "Bytes held by persisted operand entries.",
            labels=("store",),
        ).set(resident_bytes, store=self.name)
        registry.gauge(
            "persist_entries",
            "Operand entries currently on disk.",
            labels=("store",),
        ).set(entries, store=self.name)

    # -- paths ---------------------------------------------------------------
    def _path(self, kernel: str, fingerprint: str) -> Path:
        k = _SAFE.sub("_", str(kernel)) or "_"
        f = _SAFE.sub("_", str(fingerprint)) or "_"
        return self.root / f"{k}__{f}{_SUFFIX}"

    def _scan(self) -> list[os.DirEntry]:
        """All committed entry files (temp files excluded)."""
        try:
            with os.scandir(self.root) as it:
                return [e for e in it if e.is_file() and e.name.endswith(_SUFFIX)]
        except OSError:
            return []

    def _residency(self) -> tuple[int, int]:
        entries = self._scan()
        total = 0
        for e in entries:
            try:
                total += e.stat().st_size
            except OSError:
                pass
        return total, len(entries)

    # -- introspection -------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        """Total bytes of committed entries currently on disk."""
        return self._residency()[0]

    def __len__(self) -> int:
        return self._residency()[1]

    def keys(self) -> list[tuple[str, str]]:
        """``(kernel, fingerprint)`` of committed entries (as filed)."""
        out = []
        for e in self._scan():
            stem = e.name[: -len(_SUFFIX)]
            kernel, sep, fingerprint = stem.rpartition("__")
            if sep:
                out.append((kernel, fingerprint))
        return sorted(out)

    # -- read ----------------------------------------------------------------
    def get(self, kernel: str, fingerprint: str, *, codec: str) -> bytes | None:
        """Load a validated payload, or ``None`` as a counted miss.

        ``codec`` names the serialization the caller understands; an
        entry written under a different codec string is a structured
        miss (reason ``codec``), exactly like a schema-version skew.
        A hit refreshes the entry's mtime, which is the store's LRU
        recency signal.
        """
        path = self._path(kernel, fingerprint)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return self._miss("absent", None)
        except OSError:
            return self._miss("absent", None)

        reason = self._validate_frame(data, kernel, fingerprint, codec)
        if reason is not None:
            return self._miss(reason, path)

        payload = data[_FIXED + self._header_len(data):]
        try:
            os.utime(path)
        except OSError:
            pass  # recency refresh is best-effort
        with self._lock:
            self.stats.hits += 1
        self._emit([("hit", {})])
        return payload

    @staticmethod
    def _header_len(data: bytes) -> int:
        return int.from_bytes(data[_FIXED - 4:_FIXED], "little")

    def _validate_frame(
        self, data: bytes, kernel: str, fingerprint: str, codec: str
    ) -> str | None:
        """Return a miss reason, or ``None`` if the frame is a valid hit."""
        if len(data) < _FIXED:
            return "truncated"
        if data[: len(_MAGIC)] != _MAGIC:
            return "magic"
        schema = int.from_bytes(data[len(_MAGIC):len(_MAGIC) + 4], "little")
        if schema != self.schema_version:
            return "schema"
        hlen = self._header_len(data)
        if len(data) < _FIXED + hlen:
            return "truncated"
        try:
            header = json.loads(data[_FIXED:_FIXED + hlen].decode("utf-8"))
            payload_bytes = int(header["payload_bytes"])
            digest = str(header["digest"])
            h_kernel = str(header["kernel"])
            h_fingerprint = str(header["fingerprint"])
            h_codec = str(header["codec"])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return "header"
        payload = data[_FIXED + hlen:]
        if len(payload) != payload_bytes:
            return "truncated"
        if _digest(payload) != digest:
            return "digest"
        if (h_kernel, h_fingerprint) != (str(kernel), str(fingerprint)):
            return "key-mismatch"
        if h_codec != codec:
            return "codec"
        return None

    def _miss(self, reason: str, path: Path | None) -> None:
        """Count a structured miss; unlink the offending entry if any."""
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass  # already evicted by a peer, or read-only dir
        corrupt = reason in _CORRUPT_REASONS
        with self._lock:
            self.stats.misses += 1
            self.stats.miss_reasons[reason] = self.stats.miss_reasons.get(reason, 0) + 1
            if corrupt:
                self.stats.corrupt += 1
        events: list[tuple[str, dict]] = [("miss", {"reason": reason})]
        if corrupt:
            events.append(("corrupt", {}))
        self._emit(events)
        if path is not None:
            self._publish_residency(*self._residency())
        return None

    def discard(self, kernel: str, fingerprint: str, *, reason: str = "decode") -> None:
        """Drop an entry whose *payload* the caller could not use.

        The frame (magic/digest/key) can validate while the payload is
        still undecodable by the layer above — e.g. a pickle written by
        an incompatible library version.  The engine reports that here
        so it counts as a structured miss and the entry stops wasting
        budget.
        """
        self._miss(reason, self._path(kernel, fingerprint))

    # -- write ---------------------------------------------------------------
    def put(self, kernel: str, fingerprint: str, payload: bytes, *, codec: str) -> bool:
        """Durably write one entry; ``True`` if it is now on disk.

        Failures never raise: a payload larger than the whole budget is
        counted ``rejected``; an I/O error (disk full, permissions) is
        counted ``put_errors`` and the temp file cleaned up.  After a
        successful write, least-recently-used peers are unlinked until
        the directory fits the budget again.
        """
        payload = bytes(payload)
        if len(payload) > self.size_budget_bytes:
            with self._lock:
                self.stats.rejected += 1
            self._emit([("put", {"outcome": "rejected"})])
            return False

        header = json.dumps(
            {
                "kernel": str(kernel),
                "fingerprint": str(fingerprint),
                "codec": str(codec),
                "payload_bytes": len(payload),
                "digest": _digest(payload),
            },
            sort_keys=True,
        ).encode("utf-8")
        frame = (
            _MAGIC
            + self.schema_version.to_bytes(4, "little")
            + len(header).to_bytes(4, "little")
            + header
            + payload
        )

        path = self._path(kernel, fingerprint)
        with self._lock:
            self._tmp_seq += 1
            seq = self._tmp_seq
        tmp = self.root / f".{path.name}.tmp-{os.getpid()}-{seq}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(frame)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            with self._lock:
                self.stats.put_errors += 1
            self._emit([("put", {"outcome": "error"})])
            return False

        evicted = self._evict_to_budget(keep=path.name)
        with self._lock:
            self.stats.puts += 1
            self.stats.evictions += evicted
        events: list[tuple[str, dict]] = [("put", {"outcome": "stored"})]
        events.extend(("eviction", {}) for _ in range(evicted))
        self._emit(events)
        self._publish_residency(*self._residency())
        return True

    def _evict_to_budget(self, keep: str) -> int:
        """Unlink oldest-mtime entries until the budget holds; count them."""
        entries = []
        total = 0
        for e in self._scan():
            try:
                st = e.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, e.name, st.st_size))
            total += st.st_size
        evicted = 0
        for _, name, size in sorted(entries):
            if total <= self.size_budget_bytes:
                break
            if name == keep:
                continue
            try:
                os.unlink(self.root / name)
            except OSError:
                continue  # a peer got there first; its budget, its count
            total -= size
            evicted += 1
        return evicted

    def clear(self) -> None:
        """Unlink every committed entry (counters are preserved)."""
        for e in self._scan():
            try:
                os.unlink(e.path)
            except OSError:
                pass
        self._publish_residency(*self._residency())

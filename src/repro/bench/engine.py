"""Engine benchmark: amortized vs cold per-vector SpMV cost.

The paper times one ``y = Ax`` per kernel launch; this harness measures
the serving-path win the :class:`~repro.engine.SpMVEngine` adds on top —
one bitBSR decode (``prepare``) reused across a same-matrix micro-batch,
plus the operand cache turning repeat traffic into hits.

Three measurements per configuration:

* **cold**: ``prepare + run`` from scratch for every vector (what an
  application without the engine pays per request);
* **batched**: one ``engine.spmv_many`` over the same vectors — the
  prepare cost is paid once and the numeric path is vectorized;
* **cache-hit curve**: hit rate after each of ``rounds`` single-vector
  requests against one engine instance.

Results are plain wall-clock dicts (no :class:`KernelProfile` involved),
so they bypass the ``.bench_cache`` on-disk memoization entirely and the
bench cache version is unaffected.

Each run also folds its observability state — engine / cache / kernel
counters, degradation events, the span timeline — into a
:class:`~repro.obs.RunReport` carried on the result, and
:func:`append_obs_trajectory` appends that to the ``BENCH_obs.json``
trajectory artifact CI uploads, so perf regressions are trackable
across PRs.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.engine import SpMVEngine
from repro.errors import ObservabilityError
from repro.exec.middleware import stage_span
from repro.formats.csr import CSRMatrix
from repro.kernels.base import get_kernel
from repro.matrices.random import random_coo

__all__ = [
    "EngineBenchResult",
    "append_obs_trajectory",
    "bench_engine",
    "format_report",
]


@dataclass(frozen=True)
class EngineBenchResult:
    """Wall-clock comparison of cold vs engine-batched SpMV serving."""

    kernel: str
    nrows: int
    ncols: int
    nnz: int
    batch: int
    #: Total seconds for ``batch`` cold ``prepare + run`` round trips.
    cold_seconds: float
    #: Total seconds for one ``spmv_many`` over the same ``batch`` vectors.
    batched_seconds: float
    #: Batched results match per-vector ``run`` bit for bit.
    bitwise_equal: bool
    #: Cache hit rate after each warm round of single-vector requests.
    hit_curve: tuple[float, ...]
    #: The run's merged observability document
    #: (:meth:`~repro.obs.RunReport.as_dict` form).
    run_report: dict = field(default_factory=dict)

    @property
    def cold_per_vector(self) -> float:
        return self.cold_seconds / self.batch

    @property
    def amortized_per_vector(self) -> float:
        return self.batched_seconds / self.batch

    @property
    def speedup(self) -> float:
        """Cold-to-amortized per-vector time ratio (higher is better)."""
        return self.cold_per_vector / max(self.amortized_per_vector, 1e-12)

    def as_dict(self) -> dict:
        out = asdict(self)
        out["hit_curve"] = list(self.hit_curve)
        out.update(
            cold_per_vector=self.cold_per_vector,
            amortized_per_vector=self.amortized_per_vector,
            speedup=self.speedup,
        )
        return out


def bench_engine(
    nrows: int = 2048,
    ncols: int = 2048,
    density: float = 0.004,
    *,
    batch: int = 32,
    rounds: int = 8,
    kernel: str = "spaden",
    seed: int = 0,
) -> EngineBenchResult:
    """Time ``batch`` cold calls against one engine micro-batch.

    The cold path re-prepares the operand per vector, mirroring an
    application that issues one uncached :func:`repro.exec.execute` per
    request.  The batched path issues the same requests through one
    :meth:`~repro.engine.SpMVEngine.spmv_many`.  Results are compared
    bitwise; the returned :class:`EngineBenchResult` carries both totals
    and the cache-hit curve of ``rounds`` follow-up warm requests.
    """
    from repro.exec import execute

    csr = CSRMatrix.from_coo(random_coo(nrows, ncols, density, seed=seed))
    rng = np.random.default_rng(seed + 1)
    vectors = [rng.standard_normal(ncols).astype(np.float32) for _ in range(batch)]
    kern = get_kernel(kernel)

    with stage_span("bench.engine.cold", kernel=kernel, batch=batch):
        start = time.perf_counter()
        cold_results = []
        for x in vectors:
            cold_results.append(execute(kern, csr, x).y)
        cold_seconds = time.perf_counter() - start

    engine = SpMVEngine(kernel)
    with stage_span("bench.engine.batched", kernel=kernel, batch=batch):
        start = time.perf_counter()
        batched_results = engine.spmv_many([(csr, x) for x in vectors])
        batched_seconds = time.perf_counter() - start

    bitwise_equal = all(
        np.array_equal(cold, warm) for cold, warm in zip(cold_results, batched_results)
    )

    with stage_span("bench.engine.warm", kernel=kernel, rounds=rounds):
        hit_curve = []
        for i in range(rounds):
            engine.spmv(csr, vectors[i % batch])
            hit_curve.append(engine.cache.stats.hit_rate)

    report = engine.run_report(
        meta={
            "source": "bench_engine",
            "nrows": nrows,
            "ncols": ncols,
            "density": density,
            "batch": batch,
            "rounds": rounds,
            "seed": seed,
        }
    )
    return EngineBenchResult(
        kernel=kernel,
        nrows=nrows,
        ncols=ncols,
        nnz=csr.nnz,
        batch=batch,
        cold_seconds=cold_seconds,
        batched_seconds=batched_seconds,
        bitwise_equal=bitwise_equal,
        hit_curve=tuple(hit_curve),
        run_report=report.as_dict(),
    )


def append_obs_trajectory(path: str | Path, result: EngineBenchResult) -> int:
    """Append one bench run to the ``BENCH_obs.json`` trajectory.

    The artifact is a JSON list, one entry per recorded run —
    ``{"recorded_unix": ..., "bench": <result minus the report>,
    "report": <RunReport dict>}`` — so successive PRs (and the CI
    artifact trail) can diff amortized timings, cache hit rates and
    degradation counts over time.  Returns the trajectory length after
    appending.  A file holding anything other than a JSON list is a
    structured error, never silently overwritten.
    """
    path = Path(path)
    trajectory: list = []
    if path.exists() and path.read_text(encoding="utf-8").strip():
        try:
            trajectory = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path} is not valid JSON ({exc}); refusing to overwrite"
            ) from exc
        if not isinstance(trajectory, list):
            raise ObservabilityError(
                f"{path} holds a {type(trajectory).__name__}, expected a "
                f"trajectory list; refusing to overwrite"
            )
    bench = result.as_dict()
    report = bench.pop("run_report", {})
    trajectory.append(
        {
            "recorded_unix": round(time.time(), 3),
            "bench": bench,
            "report": report,
        }
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return len(trajectory)


def format_report(result: EngineBenchResult) -> str:
    """Human-readable summary of one :func:`bench_engine` run."""
    lines = [
        f"engine bench — {result.kernel} on {result.nrows}x{result.ncols}, "
        f"nnz={result.nnz}, batch={result.batch}",
        f"  cold      : {result.cold_seconds * 1e3:9.3f} ms total, "
        f"{result.cold_per_vector * 1e6:9.1f} us/vector",
        f"  batched   : {result.batched_seconds * 1e3:9.3f} ms total, "
        f"{result.amortized_per_vector * 1e6:9.1f} us/vector",
        f"  speedup   : {result.speedup:6.2f}x amortized over cold",
        f"  bitwise   : {'equal' if result.bitwise_equal else 'MISMATCH'}",
        "  hit curve : " + " ".join(f"{r:.2f}" for r in result.hit_curve),
    ]
    report = result.run_report
    if report:
        spans = report.get("spans", [])
        degradations = len(report.get("degradation_events", []))
        lines.append(
            f"  obs       : {len(spans)} spans, {degradations} degradation(s), "
            f"{len(report.get('metrics', {}).get('metrics', []))} metrics"
        )
    return "\n".join(lines)

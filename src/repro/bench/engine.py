"""Engine benchmark: amortized vs cold per-vector SpMV cost.

The paper times one ``y = Ax`` per kernel launch; this harness measures
the serving-path win the :class:`~repro.engine.SpMVEngine` adds on top —
one bitBSR decode (``prepare``) reused across a same-matrix micro-batch,
plus the operand cache turning repeat traffic into hits.

Three measurements per configuration:

* **cold**: ``prepare + run`` from scratch for every vector (what an
  application without the engine pays per request);
* **batched**: one ``engine.spmv_many`` over the same vectors — the
  prepare cost is paid once and the numeric path is vectorized;
* **cache-hit curve**: hit rate after each of ``rounds`` single-vector
  requests against one engine instance.

Results are plain wall-clock dicts (no :class:`KernelProfile` involved),
so they bypass the ``.bench_cache`` on-disk memoization entirely and the
bench cache version is unaffected.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.engine import SpMVEngine
from repro.formats.csr import CSRMatrix
from repro.kernels.base import get_kernel
from repro.matrices.random import random_coo

__all__ = ["EngineBenchResult", "bench_engine", "format_report"]


@dataclass(frozen=True)
class EngineBenchResult:
    """Wall-clock comparison of cold vs engine-batched SpMV serving."""

    kernel: str
    nrows: int
    ncols: int
    nnz: int
    batch: int
    #: Total seconds for ``batch`` cold ``prepare + run`` round trips.
    cold_seconds: float
    #: Total seconds for one ``spmv_many`` over the same ``batch`` vectors.
    batched_seconds: float
    #: Batched results match per-vector ``run`` bit for bit.
    bitwise_equal: bool
    #: Cache hit rate after each warm round of single-vector requests.
    hit_curve: tuple[float, ...]

    @property
    def cold_per_vector(self) -> float:
        return self.cold_seconds / self.batch

    @property
    def amortized_per_vector(self) -> float:
        return self.batched_seconds / self.batch

    @property
    def speedup(self) -> float:
        """Cold-to-amortized per-vector time ratio (higher is better)."""
        return self.cold_per_vector / max(self.amortized_per_vector, 1e-12)

    def as_dict(self) -> dict:
        out = asdict(self)
        out["hit_curve"] = list(self.hit_curve)
        out.update(
            cold_per_vector=self.cold_per_vector,
            amortized_per_vector=self.amortized_per_vector,
            speedup=self.speedup,
        )
        return out


def bench_engine(
    nrows: int = 2048,
    ncols: int = 2048,
    density: float = 0.004,
    *,
    batch: int = 32,
    rounds: int = 8,
    kernel: str = "spaden",
    seed: int = 0,
) -> EngineBenchResult:
    """Time ``batch`` cold calls against one engine micro-batch.

    The cold path re-prepares the operand per vector, mirroring an
    application that issues one uncached :func:`repro.exec.execute` per
    request.  The batched path issues the same requests through one
    :meth:`~repro.engine.SpMVEngine.spmv_many`.  Results are compared
    bitwise; the returned :class:`EngineBenchResult` carries both totals
    and the cache-hit curve of ``rounds`` follow-up warm requests.
    """
    from repro.exec import execute

    csr = CSRMatrix.from_coo(random_coo(nrows, ncols, density, seed=seed))
    rng = np.random.default_rng(seed + 1)
    vectors = [rng.standard_normal(ncols).astype(np.float32) for _ in range(batch)]
    kern = get_kernel(kernel)

    start = time.perf_counter()
    cold_results = []
    for x in vectors:
        cold_results.append(execute(kern, csr, x).y)
    cold_seconds = time.perf_counter() - start

    engine = SpMVEngine(kernel)
    start = time.perf_counter()
    batched_results = engine.spmv_many([(csr, x) for x in vectors])
    batched_seconds = time.perf_counter() - start

    bitwise_equal = all(
        np.array_equal(cold, warm) for cold, warm in zip(cold_results, batched_results)
    )

    hit_curve = []
    for i in range(rounds):
        engine.spmv(csr, vectors[i % batch])
        hit_curve.append(engine.cache.stats.hit_rate)

    return EngineBenchResult(
        kernel=kernel,
        nrows=nrows,
        ncols=ncols,
        nnz=csr.nnz,
        batch=batch,
        cold_seconds=cold_seconds,
        batched_seconds=batched_seconds,
        bitwise_equal=bitwise_equal,
        hit_curve=tuple(hit_curve),
    )


def format_report(result: EngineBenchResult) -> str:
    """Human-readable summary of one :func:`bench_engine` run."""
    lines = [
        f"engine bench — {result.kernel} on {result.nrows}x{result.ncols}, "
        f"nnz={result.nnz}, batch={result.batch}",
        f"  cold      : {result.cold_seconds * 1e3:9.3f} ms total, "
        f"{result.cold_per_vector * 1e6:9.1f} us/vector",
        f"  batched   : {result.batched_seconds * 1e3:9.3f} ms total, "
        f"{result.amortized_per_vector * 1e6:9.1f} us/vector",
        f"  speedup   : {result.speedup:6.2f}x amortized over cold",
        f"  bitwise   : {'equal' if result.bitwise_equal else 'MISMATCH'}",
        "  hit curve : " + " ".join(f"{r:.2f}" for r in result.hit_curve),
    ]
    return "\n".join(lines)

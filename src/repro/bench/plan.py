"""Planner crossover benchmark: Fig. 9's block-density sweep, planned.

The paper's Fig. 9 shows the SpMV winner flipping with block density:
dense 8x8 blocks amortize the tensor-core MMA path, hypersparse blocks
waste it.  The static fallback chain always leads with spaden; the
:class:`~repro.plan.StructurePlanner` should lead with whichever kernel
the structure actually favors.  This harness sweeps seeded synthetic
matrices across per-block densities (64 nnz/block down to 1), asks the
planner and the static chain for their first picks, and scores both
against an exact ground truth — each chain kernel's *measured*
simulator counters (``ExecutionMode.PROFILED``) pushed through the
:func:`repro.perf.model.estimate_time` roofline, no synthetic profile
approximations.

The acceptance criterion is relative, not absolute: at every sweep
point the planner's pick must be no slower than the static pick beyond
``tolerance`` (``margin <= tolerance`` where ``margin`` is the ground
truth time ratio minus one).  A planner that merely reproduces the
static order passes; one that flips to a slower kernel fails.

:func:`append_plan_trajectory` appends each run to the seeded
``BENCH_plan.json`` artifact CI uploads (a JSON list; anything else in
the file is a structured refuse-to-clobber error), so crossover margins
are diffable across PRs like the other bench trajectories.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.errors import ObservabilityError, PlanError
from repro.exec import ExecutionMode, execute
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.gpu.spec import get_gpu
from repro.kernels.base import get_kernel
from repro.perf.model import estimate_time
from repro.plan import StaticPlanner, StructurePlanner

__all__ = [
    "PlanBenchResult",
    "PlanCrossoverPoint",
    "append_plan_trajectory",
    "bench_plan_crossover",
    "block_sweep_csr",
    "format_plan_report",
]

#: Default per-block nnz sweep, dense blocks first (Fig. 9's x-axis).
DEFAULT_SWEEP: tuple[int, ...] = (64, 32, 16, 8, 4, 2, 1)


def block_sweep_csr(
    per_block_nnz: int,
    *,
    nrows: int = 512,
    ncols: int = 512,
    nnz_target: int = 4096,
    seed: int = 0,
) -> CSRMatrix:
    """A seeded matrix with ~``nnz_target`` nnz at one block density.

    Nonzeros are placed in ``nnz_target // per_block_nnz`` distinct 8x8
    blocks, each holding exactly ``per_block_nnz`` cells — so the sweep
    holds total work roughly constant while moving it between few dense
    blocks and many sparse ones, which is precisely the axis the
    spaden-vs-CSR crossover lives on.
    """
    if not 1 <= per_block_nnz <= 64:
        raise PlanError(
            f"per_block_nnz must be in [1, 64], got {per_block_nnz}"
        )
    if nrows % 8 or ncols % 8:
        raise PlanError(
            f"sweep shape must be 8-aligned, got {nrows}x{ncols}"
        )
    rng = np.random.default_rng(seed)
    block_rows, block_cols = nrows // 8, ncols // 8
    n_blocks = min(max(1, nnz_target // per_block_nnz), block_rows * block_cols)
    blocks = rng.choice(block_rows * block_cols, size=n_blocks, replace=False)
    rows_parts, cols_parts = [], []
    for block in blocks:
        block_row, block_col = divmod(int(block), block_cols)
        cells = rng.choice(64, size=per_block_nnz, replace=False)
        rows_parts.append(block_row * 8 + cells // 8)
        cols_parts.append(block_col * 8 + cells % 8)
    rows = np.concatenate(rows_parts).astype(np.int32)
    cols = np.concatenate(cols_parts).astype(np.int32)
    values = rng.standard_normal(rows.size).astype(np.float32)
    return CSRMatrix.from_coo(COOMatrix((nrows, ncols), rows, cols, values))


def _ground_truth_seconds(
    csr: CSRMatrix, x: np.ndarray, gpu: str, kernels: tuple[str, ...]
) -> dict[str, float]:
    """Exact modeled seconds per kernel: measured counters -> roofline."""
    spec = get_gpu(gpu)
    truth = {}
    for name in kernels:
        profile = execute(get_kernel(name), csr, x, mode=ExecutionMode.PROFILED).profile
        truth[name] = estimate_time(profile, spec).total
    return truth


@dataclass(frozen=True)
class PlanCrossoverPoint:
    """One density point: both picks, scored against exact ground truth."""

    per_block_nnz: int
    nrows: int
    ncols: int
    nnz: int
    #: The planner's top-ranked kernel for this matrix.
    planner_pick: str
    #: The static chain's unconditional first kernel.
    static_pick: str
    #: Exact modeled seconds per chain kernel (measured counters).
    truth_seconds: dict
    #: ``truth[planner_pick] / truth[static_pick] - 1`` — <= 0 means the
    #: planner's pick is at least as fast as the static pick.
    margin: float
    #: The full plan document (:meth:`~repro.plan.ExecutionPlan.as_dict`).
    plan: dict

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class PlanBenchResult:
    """A full crossover sweep with its tolerance verdict."""

    gpu: str
    seed: int
    tolerance: float
    points: tuple[PlanCrossoverPoint, ...]

    @property
    def worst_margin(self) -> float:
        return max(point.margin for point in self.points)

    @property
    def within_tolerance(self) -> bool:
        """Planner never slower than static beyond tolerance, anywhere."""
        return all(point.margin <= self.tolerance for point in self.points)

    @property
    def reorder_points(self) -> int:
        """Sweep points where the planner departed from the static pick."""
        return sum(
            1 for point in self.points if point.planner_pick != point.static_pick
        )

    def as_dict(self) -> dict:
        return {
            "gpu": self.gpu,
            "seed": self.seed,
            "tolerance": self.tolerance,
            "worst_margin": self.worst_margin,
            "within_tolerance": self.within_tolerance,
            "reorder_points": self.reorder_points,
            "points": [point.as_dict() for point in self.points],
        }


def bench_plan_crossover(
    sweep: tuple[int, ...] = DEFAULT_SWEEP,
    *,
    nrows: int = 512,
    ncols: int = 512,
    nnz_target: int = 4096,
    gpu: str = "L40",
    seed: int = 0,
    tolerance: float = 0.15,
) -> PlanBenchResult:
    """Sweep block density; score planner picks against the static chain.

    Per point: build the seeded matrix, take the
    :class:`~repro.plan.StructurePlanner`'s plan and the
    :class:`~repro.plan.StaticPlanner`'s chain head, compute the exact
    ground truth for every chain kernel from measured simulator
    counters, and record the margin.  The planner instance is fresh per
    sweep (no latency feedback), so this measures the structure + cost
    model alone — the reproducible part.
    """
    planner = StructurePlanner(gpu)
    static = StaticPlanner()
    points = []
    for index, per_block_nnz in enumerate(sweep):
        csr = block_sweep_csr(
            per_block_nnz,
            nrows=nrows,
            ncols=ncols,
            nnz_target=nnz_target,
            seed=seed + index,
        )
        rng = np.random.default_rng(seed + 1000 + index)
        x = rng.standard_normal(ncols).astype(np.float32)
        plan = planner.plan(csr)
        static_pick = static.plan(csr).kernels[0]
        truth = _ground_truth_seconds(csr, x, gpu, static.plan(csr).kernels)
        margin = truth[plan.kernels[0]] / truth[static_pick] - 1.0
        points.append(
            PlanCrossoverPoint(
                per_block_nnz=per_block_nnz,
                nrows=nrows,
                ncols=ncols,
                nnz=csr.nnz,
                planner_pick=plan.kernels[0],
                static_pick=static_pick,
                truth_seconds=truth,
                margin=margin,
                plan=plan.as_dict(),
            )
        )
    return PlanBenchResult(
        gpu=gpu, seed=seed, tolerance=tolerance, points=tuple(points)
    )


def append_plan_trajectory(path: str | Path, result: PlanBenchResult) -> int:
    """Append one sweep to the ``BENCH_plan.json`` trajectory artifact.

    Same contract as the other bench trajectories: the artifact is a
    JSON list (one entry per recorded sweep); a file holding anything
    else is a structured :class:`~repro.errors.ObservabilityError`,
    never silently overwritten.  Returns the trajectory length.
    """
    path = Path(path)
    trajectory: list = []
    if path.exists() and path.read_text(encoding="utf-8").strip():
        try:
            trajectory = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path} is not valid JSON ({exc}); refusing to overwrite"
            ) from exc
        if not isinstance(trajectory, list):
            raise ObservabilityError(
                f"{path} holds a {type(trajectory).__name__}, expected a "
                f"trajectory list; refusing to overwrite"
            )
    trajectory.append(
        {"recorded_unix": round(time.time(), 3), "bench": result.as_dict()}
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return len(trajectory)


def format_plan_report(result: PlanBenchResult) -> str:
    """Human-readable crossover table for one sweep."""
    lines = [
        f"plan crossover — gpu={result.gpu}, seed={result.seed}, "
        f"tolerance={result.tolerance:.0%}",
        "  nnz/blk  planner pick     static pick      margin",
    ]
    for point in result.points:
        flag = "" if point.margin <= result.tolerance else "  <-- OVER TOLERANCE"
        lines.append(
            f"  {point.per_block_nnz:7d}  {point.planner_pick:15s}  "
            f"{point.static_pick:15s}  {point.margin:+7.2%}{flag}"
        )
    lines.append(
        f"  worst margin {result.worst_margin:+.2%} over {len(result.points)} "
        f"points ({result.reorder_points} reordered); "
        f"{'OK' if result.within_tolerance else 'FAIL'}"
    )
    return "\n".join(lines)

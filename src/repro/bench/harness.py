"""Benchmark harness shared by every table/figure reproduction.

Scale control
    ``REPRO_SCALE`` (default 0.08) shrinks every Table-1 analog
    proportionally so the suite runs in minutes; set ``REPRO_SCALE=1``
    to regenerate the paper's full-size dataset.  Structure-derived
    results (Table 1 ratios, Fig. 9a, Fig. 10b) are scale-invariant;
    modeled runtimes (Figs. 6-8) sharpen as scale grows because the
    fixed launch/occupancy terms stop dominating.

Caching
    Kernel profiles are pure functions of (matrix name, scale, kernel),
    so they are memoized on disk under ``.bench_cache/`` next to the
    working directory.  Delete the directory to force recomputation.
"""

from __future__ import annotations

import os
import pickle
import warnings
from pathlib import Path

from repro.gpu.spec import get_gpu
from repro.kernels.base import KernelProfile
from repro.matrices import GeneratedMatrix, generate_matrix, in_scope_names
from repro.perf import estimate_time

__all__ = [
    "EVALUATED_METHODS",
    "FIG8_METHODS",
    "bench_scale",
    "prune_bench_cache",
    "load_suite",
    "profile_suite",
    "modeled_times",
]

#: The six methods of Figs. 6-7.
EVALUATED_METHODS: tuple[str, ...] = (
    "spaden",
    "cusparse-csr",
    "cusparse-bsr",
    "lightspmv",
    "gunrock",
    "dasp",
)

#: The Fig. 8 breakdown set.
FIG8_METHODS: tuple[str, ...] = ("spaden", "spaden-no-tc", "cusparse-bsr", "csr-warp16")

_CACHE_DIR = Path(os.environ.get("REPRO_BENCH_CACHE", ".bench_cache"))

#: Bump whenever :class:`KernelProfile` / :class:`ExecutionStats` change
#: shape, so caches written by an older build are discarded instead of
#: deserializing into objects missing the new fields.
_CACHE_VERSION = 3


def bench_scale() -> float:
    """Scale factor for the Table-1 analogs (env ``REPRO_SCALE``)."""
    return float(os.environ.get("REPRO_SCALE", "0.08"))


def load_suite(
    scale: float | None = None, names: list[str] | None = None
) -> dict[str, GeneratedMatrix]:
    """Generate (deterministically) the evaluation matrices."""
    scale = bench_scale() if scale is None else scale
    names = in_scope_names() if names is None else names
    return {name: generate_matrix(name, scale=scale) for name in names}


def _load_cached(path: Path) -> KernelProfile | None:
    """Deserialize one cache entry defensively.

    Any anomaly — truncated/corrupt bytes, a payload from a different
    build (version mismatch), or an unexpected object shape — is
    reported as a :class:`UserWarning` and treated as a miss; the entry
    is deleted and the profile recomputed.  A damaged cache must never
    crash a benchmark run.
    """
    try:
        payload = pickle.loads(path.read_bytes())
    except Exception as exc:
        warnings.warn(
            f"discarding corrupt bench cache entry {path.name}: "
            f"{type(exc).__name__}: {exc}",
            stacklevel=3,
        )
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _CACHE_VERSION
        or not isinstance(payload.get("profile"), KernelProfile)
    ):
        got = payload.get("version") if isinstance(payload, dict) else type(payload).__name__
        warnings.warn(
            f"discarding stale bench cache entry {path.name} "
            f"(cache version {got!r}, expected {_CACHE_VERSION})",
            stacklevel=3,
        )
        return None
    return payload["profile"]


def prune_bench_cache() -> int:
    """Delete unreadable or stale entries from the cache; returns count.

    Safe to call when the directory does not exist.  Used by the
    benchmark suite's session setup so a cache poisoned by an aborted
    write or an older build heals itself.
    """
    removed = 0
    if not _CACHE_DIR.is_dir():
        return removed
    for path in sorted(_CACHE_DIR.glob("*.pkl")):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            stale = _load_cached(path) is None
        if stale:
            path.unlink(missing_ok=True)
            removed += 1
    return removed


def _count_profile_cache(result: str) -> None:
    from repro.obs import get_registry

    get_registry().counter(
        "bench_profile_cache_total",
        "On-disk bench profile memoization lookups, by outcome.",
        labels=("result",),
    ).inc(result=result)


def _cached_profile(matrix: GeneratedMatrix, method: str, scale: float) -> KernelProfile:
    key = f"{matrix.name}-{scale}-{method}.pkl"
    path = _CACHE_DIR / key
    if path.exists():
        profile = _load_cached(path)
        if profile is not None:
            _count_profile_cache("hit")
            return profile
        path.unlink(missing_ok=True)
    from repro.exec import ExecutionMode, execute
    from repro.exec.middleware import stage_span

    _count_profile_cache("miss")
    with stage_span("bench.profile", matrix=matrix.name, method=method, scale=scale):
        result = execute(method, matrix.csr, matrix.dense_vector(), mode=ExecutionMode.PROFILED)
    profile = result.profile
    _CACHE_DIR.mkdir(exist_ok=True)
    path.write_bytes(pickle.dumps({"version": _CACHE_VERSION, "profile": profile}))
    return profile


def profile_suite(
    suite: dict[str, GeneratedMatrix],
    methods: tuple[str, ...] = EVALUATED_METHODS,
    scale: float | None = None,
) -> dict[str, dict[str, KernelProfile]]:
    """Per-matrix, per-method execution profiles (disk-cached)."""
    scale = bench_scale() if scale is None else scale
    return {
        name: {m: _cached_profile(matrix, m, scale) for m in methods}
        for name, matrix in suite.items()
    }


def modeled_times(
    profiles: dict[str, dict[str, KernelProfile]],
    gpu_name: str,
) -> dict[str, dict[str, float]]:
    """Modeled runtimes (seconds) for every (matrix, method) pair."""
    gpu = get_gpu(gpu_name)
    return {
        name: {m: estimate_time(p, gpu).total for m, p in per_method.items()}
        for name, per_method in profiles.items()
    }

"""Benchmark harness shared by every table/figure reproduction.

Scale control
    ``REPRO_SCALE`` (default 0.08) shrinks every Table-1 analog
    proportionally so the suite runs in minutes; set ``REPRO_SCALE=1``
    to regenerate the paper's full-size dataset.  Structure-derived
    results (Table 1 ratios, Fig. 9a, Fig. 10b) are scale-invariant;
    modeled runtimes (Figs. 6-8) sharpen as scale grows because the
    fixed launch/occupancy terms stop dominating.

Caching
    Kernel profiles are pure functions of (matrix name, scale, kernel),
    so they are memoized on disk under ``.bench_cache/`` next to the
    working directory.  Delete the directory to force recomputation.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.gpu.spec import get_gpu
from repro.kernels import get_kernel
from repro.kernels.base import KernelProfile
from repro.matrices import GeneratedMatrix, generate_matrix, in_scope_names
from repro.perf import estimate_time

__all__ = [
    "EVALUATED_METHODS",
    "FIG8_METHODS",
    "bench_scale",
    "load_suite",
    "profile_suite",
    "modeled_times",
]

#: The six methods of Figs. 6-7.
EVALUATED_METHODS: tuple[str, ...] = (
    "spaden",
    "cusparse-csr",
    "cusparse-bsr",
    "lightspmv",
    "gunrock",
    "dasp",
)

#: The Fig. 8 breakdown set.
FIG8_METHODS: tuple[str, ...] = ("spaden", "spaden-no-tc", "cusparse-bsr", "csr-warp16")

_CACHE_DIR = Path(os.environ.get("REPRO_BENCH_CACHE", ".bench_cache"))


def bench_scale() -> float:
    """Scale factor for the Table-1 analogs (env ``REPRO_SCALE``)."""
    return float(os.environ.get("REPRO_SCALE", "0.08"))


def load_suite(
    scale: float | None = None, names: list[str] | None = None
) -> dict[str, GeneratedMatrix]:
    """Generate (deterministically) the evaluation matrices."""
    scale = bench_scale() if scale is None else scale
    names = in_scope_names() if names is None else names
    return {name: generate_matrix(name, scale=scale) for name in names}


def _cached_profile(matrix: GeneratedMatrix, method: str, scale: float) -> KernelProfile:
    key = f"{matrix.name}-{scale}-{method}.pkl"
    path = _CACHE_DIR / key
    if path.exists():
        try:
            return pickle.loads(path.read_bytes())
        except Exception:
            path.unlink()
    kernel = get_kernel(method)
    prepared = kernel.prepare(matrix.csr)
    profile = kernel.profile(prepared, matrix.dense_vector())
    _CACHE_DIR.mkdir(exist_ok=True)
    path.write_bytes(pickle.dumps(profile))
    return profile


def profile_suite(
    suite: dict[str, GeneratedMatrix],
    methods: tuple[str, ...] = EVALUATED_METHODS,
    scale: float | None = None,
) -> dict[str, dict[str, KernelProfile]]:
    """Per-matrix, per-method execution profiles (disk-cached)."""
    scale = bench_scale() if scale is None else scale
    return {
        name: {m: _cached_profile(matrix, m, scale) for m in methods}
        for name, matrix in suite.items()
    }


def modeled_times(
    profiles: dict[str, dict[str, KernelProfile]],
    gpu_name: str,
) -> dict[str, dict[str, float]]:
    """Modeled runtimes (seconds) for every (matrix, method) pair."""
    gpu = get_gpu(gpu_name)
    return {
        name: {m: estimate_time(p, gpu).total for m, p in per_method.items()}
        for name, per_method in profiles.items()
    }

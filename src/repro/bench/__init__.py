"""Shared benchmark harness: suite loading, profile caching, reporting."""

from repro.bench.engine import EngineBenchResult, append_obs_trajectory, bench_engine
from repro.bench.load import (
    LoadCampaignResult,
    append_serve_trajectory,
    bench_load,
    format_load_report,
    zipf_weights,
)
from repro.bench.harness import (
    EVALUATED_METHODS,
    FIG8_METHODS,
    bench_scale,
    load_suite,
    modeled_times,
    profile_suite,
    prune_bench_cache,
)

__all__ = [
    "EVALUATED_METHODS",
    "EngineBenchResult",
    "FIG8_METHODS",
    "LoadCampaignResult",
    "append_obs_trajectory",
    "append_serve_trajectory",
    "bench_engine",
    "bench_load",
    "bench_scale",
    "format_load_report",
    "load_suite",
    "zipf_weights",
    "modeled_times",
    "profile_suite",
    "prune_bench_cache",
]

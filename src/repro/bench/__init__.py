"""Shared benchmark harness: suite loading, profile caching, reporting."""

from repro.bench.convert import (
    ConvertBenchResult,
    append_convert_trajectory,
    bench_convert,
    format_convert_report,
)
from repro.bench.engine import EngineBenchResult, append_obs_trajectory, bench_engine
from repro.bench.load import (
    LoadCampaignResult,
    append_serve_trajectory,
    bench_load,
    format_load_report,
    zipf_weights,
)
from repro.bench.plan import (
    PlanBenchResult,
    PlanCrossoverPoint,
    append_plan_trajectory,
    bench_plan_crossover,
    block_sweep_csr,
    format_plan_report,
)
from repro.bench.harness import (
    EVALUATED_METHODS,
    FIG8_METHODS,
    bench_scale,
    load_suite,
    modeled_times,
    profile_suite,
    prune_bench_cache,
)

__all__ = [
    "EVALUATED_METHODS",
    "ConvertBenchResult",
    "EngineBenchResult",
    "FIG8_METHODS",
    "LoadCampaignResult",
    "PlanBenchResult",
    "PlanCrossoverPoint",
    "append_convert_trajectory",
    "append_obs_trajectory",
    "append_plan_trajectory",
    "append_serve_trajectory",
    "bench_convert",
    "bench_engine",
    "bench_load",
    "bench_plan_crossover",
    "bench_scale",
    "block_sweep_csr",
    "format_convert_report",
    "format_plan_report",
    "format_load_report",
    "load_suite",
    "zipf_weights",
    "modeled_times",
    "profile_suite",
    "prune_bench_cache",
]

"""Shared benchmark harness: suite loading, profile caching, reporting."""

from repro.bench.engine import EngineBenchResult, append_obs_trajectory, bench_engine
from repro.bench.harness import (
    EVALUATED_METHODS,
    FIG8_METHODS,
    bench_scale,
    load_suite,
    modeled_times,
    profile_suite,
    prune_bench_cache,
)

__all__ = [
    "EVALUATED_METHODS",
    "EngineBenchResult",
    "FIG8_METHODS",
    "append_obs_trajectory",
    "bench_engine",
    "bench_scale",
    "load_suite",
    "modeled_times",
    "profile_suite",
    "prune_bench_cache",
]

"""Seeded chaos harness: fault campaigns against a live engine.

The robustness suite proves each fault model is *detected* in
isolation; this harness proves the serving stack stays healthy under
**sustained** fault pressure.  A campaign drives a request stream
through a :class:`~repro.engine.SpMVEngine` carrying a full
:class:`~repro.resilience.ResiliencePolicy` (per-batch deadlines,
seeded retries, per-kernel circuit breakers) while a fault hook
replays corruption from the PR-1 :mod:`repro.robustness.faults`
registry against freshly prepared operands — sweeping the fault
probability from calm to storm — and reports, per sweep point:

* request outcomes — clean success, degraded success (served by a
  fallback), chain-exhausted, deadline-missed, *lost* (must be zero:
  the flush contract returns every request a result or an error),
  and ``incorrect`` (a served ``y`` that disagrees with the
  reference — must be zero: degradation trades speed, never
  correctness);
* breaker lifecycle — every closed/open/half-open transition with its
  virtual-clock timestamp, final states, and recovery latency (open →
  closed time) per quarantine episode;
* retry volume out of the process-wide metrics registry.

Time is virtual (:class:`~repro.resilience.ManualClock`): each request
ticks the clock, an injected *stall* jumps it past the batch deadline,
and retry backoff consumes budget — so a campaign is instant, never
blocks, and is **bit-for-bit reproducible**: the same seed yields the
same event stream (:meth:`ChaosCampaignResult.event_stream`).
:func:`append_chaos_trajectory` persists campaigns to the
``BENCH_chaos.json`` artifact CI uploads, next to ``BENCH_obs.json``.
"""

from __future__ import annotations

import copy
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.engine import SpMVEngine
from repro.errors import DeadlineExceededError, ObservabilityError, ReproError
from repro.exec.middleware import stage_span
from repro.formats.base import SparseMatrix
from repro.formats.csr import CSRMatrix
from repro.matrices.generators import fp16_exact_values
from repro.matrices.random import random_coo
from repro.obs import get_registry
from repro.resilience import (
    BreakerBoard,
    BreakerConfig,
    ManualClock,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.robustness.faults import available_faults, faults_for_format, get_fault

__all__ = [
    "ChaosCampaignResult",
    "ChaosSweepPoint",
    "append_chaos_trajectory",
    "bench_chaos",
    "format_chaos_report",
]


@dataclass(frozen=True)
class ChaosSweepPoint:
    """Outcome tallies for one fault probability."""

    #: Per-execute-call probability of corrupting the prepared operand.
    probability: float
    #: Requests issued at this point.
    requests: int
    #: Served with no degradation event in the round.
    success: int
    #: Served, but at least one kernel was abandoned in the round.
    degraded: int
    #: Chain exhausted — every kernel (or its circuit) failed.
    exhausted: int
    #: Deadline missed — the batch budget ran out at a checkpoint.
    deadline_miss: int
    #: Served results disagreeing with the reference (must stay 0).
    incorrect: int
    #: Requests that vanished without a result or an error (must stay 0).
    lost: int
    #: Same-kernel re-attempts the retry policy issued.
    retries: int
    #: ``circuit-open`` degradation events (kernels skipped unattempted).
    circuit_open_skips: int
    #: Breaker state changes, in virtual-clock order.
    breaker_transitions: tuple[dict, ...] = ()
    #: Final breaker state per kernel that saw traffic.
    breaker_states: dict = field(default_factory=dict)
    #: Virtual seconds from each breaker-open to the following close.
    recovery_seconds: tuple[float, ...] = ()

    def rates(self) -> dict:
        """The tallies as fractions of :attr:`requests`."""
        n = max(self.requests, 1)
        return {
            "success": self.success / n,
            "degraded": self.degraded / n,
            "exhausted": self.exhausted / n,
            "deadline_miss": self.deadline_miss / n,
        }


@dataclass(frozen=True)
class ChaosCampaignResult:
    """One full probability sweep plus the merged observability report."""

    kernel: str
    nrows: int
    ncols: int
    nnz: int
    seed: int
    requests: int
    batch: int
    deadline_seconds: float
    points: tuple[ChaosSweepPoint, ...]
    #: The campaign's :meth:`~repro.obs.RunReport.as_dict` document
    #: (span durations are wall-clock, so this part is *not* part of
    #: the deterministic event stream).
    run_report: dict = field(default_factory=dict)

    @property
    def lost(self) -> int:
        return sum(p.lost for p in self.points)

    @property
    def incorrect(self) -> int:
        return sum(p.incorrect for p in self.points)

    def event_stream(self) -> list[dict]:
        """The deterministic record: same seed, same stream, bit for bit."""
        stream = []
        for point in self.points:
            entry = asdict(point)
            entry["breaker_transitions"] = [dict(t) for t in point.breaker_transitions]
            entry["recovery_seconds"] = list(point.recovery_seconds)
            entry["rates"] = point.rates()
            stream.append(entry)
        return stream

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "nrows": self.nrows,
            "ncols": self.ncols,
            "nnz": self.nnz,
            "seed": self.seed,
            "requests": self.requests,
            "batch": self.batch,
            "deadline_seconds": self.deadline_seconds,
            "lost": self.lost,
            "incorrect": self.incorrect,
            "points": self.event_stream(),
            "run_report": self.run_report,
        }


def _retry_total() -> float:
    """Current sum of ``exec_retries_total`` across all label series."""
    metric = get_registry().get("exec_retries_total")
    if metric is None:
        return 0.0
    return sum(value for _labels, value in metric.labeled())


def _recovery_latencies(transitions: list) -> list[float]:
    """Open → closed spans per breaker, from the merged transition log."""
    opened: dict[str, float] = {}
    latencies: list[float] = []
    for t in transitions:
        if t.new == "open" and t.breaker not in opened:
            opened[t.breaker] = t.at
        elif t.new == "closed" and t.breaker in opened:
            latencies.append(t.at - opened.pop(t.breaker))
    return latencies


def _make_fault_hook(rng, probability, stall_probability, stall_seconds, clock, faults):
    """The per-execute-call chaos injector.

    Two independent draws per call: a *stall* jumps the virtual clock
    (a wedged kernel — the deadline checkpoints catch it), and a
    *corruption* poisons the freshly prepared operand with a randomly
    chosen applicable fault model from the PR-1 registry.  The fault is
    injected into a deep copy swapped into ``prepared.data``: the CSR
    kernels keep the caller's matrix as their prepared data, so an
    in-place mutation would corrupt the campaign's ground truth — the
    copy poisons exactly what the cache holds (and the quarantine path
    evicts), nothing upstream.
    """

    def hook(kernel_name: str, prepared) -> None:
        if stall_probability and rng.random() < stall_probability:
            clock.advance(stall_seconds)
        if probability and rng.random() < probability:
            matrix = prepared.data
            if not isinstance(matrix, SparseMatrix):
                return
            applicable = [f for f in faults_for_format(matrix.format_name) if f in faults]
            if not applicable:
                return
            model = get_fault(applicable[int(rng.integers(len(applicable)))])
            victim = copy.deepcopy(matrix)
            try:
                model.inject(victim, rng)
            except ValueError:
                # model preconditions unmet (e.g. fp16-only fault on a
                # float32 store): this draw fires no corruption
                return
            prepared.data = victim

    return hook


def bench_chaos(
    nrows: int = 160,
    ncols: int | None = None,
    density: float = 0.03,
    *,
    kernel: str = "spaden",
    requests: int = 48,
    batch: int = 8,
    probabilities: tuple[float, ...] = (0.0, 0.5, 0.9),
    stall_fraction: float = 0.15,
    stall_seconds: float = 10.0,
    deadline_seconds: float = 8.0,
    seed: int = 0,
    faults: tuple[str, ...] | None = None,
) -> ChaosCampaignResult:
    """Run one seeded chaos campaign; returns the sweep result.

    Each sweep point gets a fresh engine, breaker board and virtual
    clock (campaign points are independent experiments).  The stream
    alternates two matrices so every flush exercises multi-group
    micro-batching and the mid-flush error contract; the clock ticks
    one virtual second per request and stalls fire with probability
    ``probability * stall_fraction`` per execute call.  ``faults``
    restricts the injected fault models (default: every registered
    format-scope model).
    """
    ncols = ncols or nrows
    if faults is None:
        faults = tuple(f for f in available_faults() if get_fault(f).formats)
    matrices = [
        CSRMatrix.from_coo(random_coo(nrows, ncols, density, seed=seed + i))
        for i in range(2)
    ]
    points: list[ChaosSweepPoint] = []
    engine = None  # the last point's engine feeds the run report

    with stage_span("bench.chaos", kernel=kernel, points=len(probabilities)):
        for index, probability in enumerate(probabilities):
            rng = np.random.default_rng((seed, index))
            clock = ManualClock()
            policy = ResiliencePolicy(
                deadline_seconds=deadline_seconds,
                retry=RetryPolicy(
                    max_attempts=2,
                    base_delay=0.5,
                    max_delay=1.0,
                    seed=seed,
                    sleep=clock.sleep,
                ),
                breakers=BreakerBoard(
                    # cooldown outlasts one request round (``batch`` virtual
                    # seconds), so the round after a trip actually *sees* the
                    # open circuit — and skips the kernel — before the
                    # half-open probe is admitted
                    BreakerConfig(
                        window=8,
                        failure_threshold=0.5,
                        min_volume=4,
                        cooldown_seconds=1.5 * batch,
                    ),
                    clock=clock,
                ),
                deep_verify=True,
                clock=clock,
            )
            engine = SpMVEngine(kernel, resilience=policy)
            hook = _make_fault_hook(
                rng,
                probability,
                probability * stall_fraction,
                stall_seconds,
                clock,
                faults,
            )

            retries_before = _retry_total()
            tallies = {k: 0 for k in (
                "success", "degraded", "exhausted", "deadline_miss", "incorrect", "lost"
            )}
            issued = 0
            with stage_span("bench.chaos.point", probability=probability):
                for _round in range(max(1, requests // batch)):
                    stream = []
                    for _ in range(batch):
                        csr = matrices[int(rng.integers(len(matrices)))]
                        x = fp16_exact_values(rng, csr.ncols)
                        stream.append((csr, x))
                        engine.submit(csr, x)
                        clock.advance(1.0)
                    issued += len(stream)
                    events_before = len(engine.stats.degradation_log)
                    results = engine.flush(return_errors=True, faults=(hook,))
                    tallies["lost"] += len(stream) - len(results)
                    round_degraded = len(engine.stats.degradation_log) > events_before
                    for (csr, x), result in zip(stream, results):
                        if isinstance(result, DeadlineExceededError):
                            tallies["deadline_miss"] += 1
                        elif isinstance(result, ReproError):
                            tallies["exhausted"] += 1
                        elif result is None:
                            tallies["lost"] += 1
                        else:
                            reference = csr.matvec(x.astype(np.float32))
                            if not np.allclose(result, reference, rtol=1e-2, atol=1e-2):
                                tallies["incorrect"] += 1
                            elif round_degraded:
                                tallies["degraded"] += 1
                            else:
                                tallies["success"] += 1

            transitions = policy.breakers.transitions()
            circuit_open_skips = sum(
                1 for e in engine.stats.degradation_log if e.cause == "circuit-open"
            )
            points.append(
                ChaosSweepPoint(
                    probability=probability,
                    requests=issued,
                    retries=int(_retry_total() - retries_before),
                    circuit_open_skips=circuit_open_skips,
                    breaker_transitions=tuple(
                        {"breaker": t.breaker, "old": t.old, "new": t.new, "at": t.at}
                        for t in transitions
                    ),
                    breaker_states=policy.breakers.states(),
                    recovery_seconds=tuple(_recovery_latencies(transitions)),
                    **tallies,
                )
            )

    report = engine.run_report(
        meta={
            "source": "bench_chaos",
            "seed": seed,
            "requests": requests,
            "batch": batch,
            "probabilities": list(probabilities),
            "deadline_seconds": deadline_seconds,
        }
    )
    return ChaosCampaignResult(
        kernel=kernel,
        nrows=nrows,
        ncols=ncols,
        nnz=sum(m.nnz for m in matrices),
        seed=seed,
        requests=requests,
        batch=batch,
        deadline_seconds=deadline_seconds,
        points=tuple(points),
        run_report=report.as_dict(),
    )


def append_chaos_trajectory(path: str | Path, result: ChaosCampaignResult) -> int:
    """Append one campaign to the ``BENCH_chaos.json`` trajectory.

    Same contract as the engine bench's ``BENCH_obs.json``: the file is
    a JSON list, one entry per recorded campaign; anything else there
    is a structured error, never silently overwritten.  Returns the
    trajectory length after appending.
    """
    path = Path(path)
    trajectory: list = []
    if path.exists() and path.read_text(encoding="utf-8").strip():
        try:
            trajectory = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path} is not valid JSON ({exc}); refusing to overwrite"
            ) from exc
        if not isinstance(trajectory, list):
            raise ObservabilityError(
                f"{path} holds a {type(trajectory).__name__}, expected a "
                f"trajectory list; refusing to overwrite"
            )
    campaign = result.as_dict()
    report = campaign.pop("run_report", {})
    trajectory.append(
        {
            "recorded_unix": round(time.time(), 3),
            "campaign": campaign,
            "report": report,
        }
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return len(trajectory)


def format_chaos_report(result: ChaosCampaignResult) -> str:
    """Human-readable summary of one campaign."""
    lines = [
        f"chaos campaign — {result.kernel} on 2x {result.nrows}x{result.ncols} "
        f"(nnz={result.nnz}), {result.requests} requests/point, "
        f"batch={result.batch}, deadline={result.deadline_seconds:g}s, "
        f"seed={result.seed}",
        "  p      ok  degr  exh  miss  bad  lost  retry  skip  breaker",
    ]
    for p in result.points:
        states = ",".join(f"{k}={v}" for k, v in p.breaker_states.items()) or "-"
        recovery = (
            f"  recovered in {min(p.recovery_seconds):g}-{max(p.recovery_seconds):g}s"
            if p.recovery_seconds
            else ""
        )
        lines.append(
            f"  {p.probability:<5.2f}{p.success:>5}{p.degraded:>6}{p.exhausted:>5}"
            f"{p.deadline_miss:>6}{p.incorrect:>5}{p.lost:>6}{p.retries:>7}"
            f"{p.circuit_open_skips:>6}  {len(p.breaker_transitions)} transition(s)"
            f"{recovery}"
        )
        for t in p.breaker_transitions:
            lines.append(
                f"           [{t['at']:g}s] {t['breaker']}: {t['old']} -> {t['new']}"
            )
        if states != "-":
            lines.append(f"           final: {states}")
    verdict = "PASS" if result.lost == 0 and result.incorrect == 0 else "FAIL"
    lines.append(
        f"  verdict : {verdict} — {result.lost} lost, {result.incorrect} incorrect"
    )
    return "\n".join(lines)

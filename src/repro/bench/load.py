"""Seeded load generator for the serving front-end (``repro.cli serve-bench``).

The chaos harness (:mod:`repro.bench.chaos`) proves the stack survives
*faults*; this harness proves it survives *traffic*.  A campaign drives
a :class:`~repro.serve.ServeFrontend` with real threads and a seeded,
reproducible workload plan shaped like serving reality:

* **zipfian matrix popularity** — request counts follow
  ``1 / rank^s`` across the registered matrices, so the operand cache
  and coalescer see a hot head and a cold tail, not uniform traffic;
* **a tenant mix** — requests carry round-robin tenant identities, and
  a deliberately rate-limited probe tenant fires a burst so quota
  rejections show up as structured
  :class:`~repro.errors.AdmissionError`\\ s in every campaign;
* **closed- and open-loop drive** — closed loop (each worker waits for
  its result before the next submit) measures latency under
  self-limiting clients; open loop (bursty fire-and-collect arrivals)
  measures coalescing and throughput under offered load the clients do
  not throttle.

Every served result is checked **bitwise** against a serial
per-request :meth:`~repro.engine.SpMVEngine.spmv` reference — the
front-end inherits the engine's batching-changes-nothing contract, and
the campaign fails loudly if concurrency ever breaks it.  The report
carries p50/p95/p99 latency, throughput, the coalescing factor
(requests per engine batch), rejection tallies and the merged
:class:`~repro.obs.RunReport`; :func:`append_serve_trajectory` persists
campaigns to the ``BENCH_serve.json`` artifact CI uploads, next to
``BENCH_obs.json`` and ``BENCH_chaos.json``.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.engine import SpMVEngine
from repro.errors import AdmissionError, ObservabilityError, ServeError
from repro.exec.middleware import stage_span
from repro.formats.csr import CSRMatrix
from repro.matrices.generators import fp16_exact_values
from repro.matrices.random import random_coo
from repro.serve import FlushPolicy, ServeFrontend, TenantQuota

__all__ = [
    "LoadCampaignResult",
    "append_serve_trajectory",
    "bench_load",
    "format_load_report",
    "zipf_weights",
]

#: Requests the rate-limited probe tenant fires back-to-back; its token
#: bucket admits ``burst`` of them and rejects the rest structurally.
_PROBE_REQUESTS = 8
_PROBE_TENANT = "probe-limited"


def zipf_weights(count: int, s: float) -> np.ndarray:
    """Zipfian popularity over ``count`` ranks: ``p_i ∝ 1 / (i+1)^s``."""
    if count < 1:
        raise ServeError(f"need at least one matrix, got {count}")
    weights = 1.0 / np.arange(1, count + 1, dtype=np.float64) ** float(s)
    return weights / weights.sum()


@dataclass(frozen=True)
class LoadCampaignResult:
    """One load campaign's tallies, latencies and folded observability."""

    kernel: str
    mode: str
    nrows: int
    ncols: int
    matrices: int
    nnz: int
    seed: int
    workers: int
    tenants: int
    zipf_s: float
    #: Planned workload size (excluding the quota probe burst).
    requests: int
    #: Requests actually admitted (plan + admitted probe requests).
    admitted: int
    #: Admitted requests that resolved with a result vector.
    completed: int
    #: Admitted requests that resolved with an error object.
    errors: int
    #: Quota rejections, by structured ``AdmissionError.reason``.
    rejected: dict = field(default_factory=dict)
    #: Admitted requests that never resolved (must stay 0).
    lost: int = 0
    #: Served vectors that differ bitwise from the serial reference
    #: (must stay 0 — coalescing trades latency, never correctness).
    incorrect: int = 0
    #: Engine micro-batches that served the campaign.
    batches: int = 0
    #: Requests per engine batch (> 1 means coalescing paid off).
    coalescing: float = 0.0
    #: Latency percentiles over completed requests, in seconds.
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    wall_seconds: float = 0.0
    throughput_rps: float = 0.0
    run_report: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "mode": self.mode,
            "nrows": self.nrows,
            "ncols": self.ncols,
            "matrices": self.matrices,
            "nnz": self.nnz,
            "seed": self.seed,
            "workers": self.workers,
            "tenants": self.tenants,
            "zipf_s": self.zipf_s,
            "requests": self.requests,
            "admitted": self.admitted,
            "completed": self.completed,
            "errors": self.errors,
            "rejected": dict(self.rejected),
            "lost": self.lost,
            "incorrect": self.incorrect,
            "batches": self.batches,
            "coalescing": self.coalescing,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "run_report": self.run_report,
        }


def _build_plan(rng, requests: int, matrices: int, tenants: int, zipf_s: float):
    """The seeded workload: ``(matrix_rank, vector_id, tenant)`` per request."""
    weights = zipf_weights(matrices, zipf_s)
    ranks = rng.choice(matrices, size=requests, p=weights)
    vector_ids = rng.integers(0, 4, size=requests)
    return [
        (int(rank), int(vector_ids[i]), f"tenant-{i % tenants}")
        for i, rank in enumerate(ranks)
    ]


def _drive_closed(frontend, plan, names, vectors, workers, record):
    """Closed loop: each worker submits, waits, verifies, repeats."""
    shares = [plan[i::workers] for i in range(workers)]
    barrier = threading.Barrier(workers)

    def worker(share):
        barrier.wait()  # line the workers up so traffic actually overlaps
        for rank, vector_id, tenant in share:
            started = time.perf_counter()
            ticket = frontend.submit(names[rank], vectors[rank][vector_id], tenant=tenant)
            error = ticket.error()
            record(rank, vector_id, ticket, error, time.perf_counter() - started)

    with ThreadPoolExecutor(workers, thread_name_prefix="load-closed") as pool:
        list(pool.map(worker, shares))


def _drive_open(frontend, plan, names, vectors, workers, record, rng_seed, burst):
    """Open loop: bursty fire-and-collect arrivals, per-worker streams."""
    shares = [plan[i::workers] for i in range(workers)]
    barrier = threading.Barrier(workers)

    def worker(slot):
        # per-worker rng keeps inter-burst gaps seeded yet thread-local
        gaps = np.random.default_rng((rng_seed, slot))
        share = shares[slot]
        tickets = []
        barrier.wait()
        for start in range(0, len(share), burst):
            for rank, vector_id, tenant in share[start : start + burst]:
                submitted = time.perf_counter()
                ticket = frontend.submit(
                    names[rank], vectors[rank][vector_id], tenant=tenant
                )
                tickets.append((rank, vector_id, ticket, submitted))
            time.sleep(float(gaps.exponential(0.002)))
        for rank, vector_id, ticket, submitted in tickets:
            error = ticket.error()
            record(rank, vector_id, ticket, error, time.perf_counter() - submitted)

    with ThreadPoolExecutor(workers, thread_name_prefix="load-open") as pool:
        list(pool.map(worker, range(workers)))


def bench_load(
    nrows: int = 96,
    ncols: int | None = None,
    density: float = 0.06,
    *,
    kernel: str = "spaden",
    matrices: int = 3,
    requests: int = 96,
    workers: int = 4,
    tenants: int = 2,
    zipf_s: float = 1.1,
    mode: str = "open",
    max_batch: int = 16,
    max_wait_seconds: float = 0.005,
    burst: int = 8,
    seed: int = 0,
) -> LoadCampaignResult:
    """Run one seeded load campaign against a fresh front-end.

    Builds ``matrices`` random CSRs (rank 0 largest-traffic under the
    zipfian plan), precomputes serial per-request references with an
    independent :class:`~repro.engine.SpMVEngine`, then drives the
    front-end with ``workers`` real threads in ``mode`` (``"open"`` or
    ``"closed"``) and fires the quota-probe burst from a rate-limited
    tenant.  Every resolution is classified (completed / error /
    rejected / lost) and every served vector is compared bitwise to its
    reference.
    """
    if mode not in ("open", "closed"):
        raise ServeError(f"mode must be 'open' or 'closed', got {mode!r}")
    if workers < 1:
        raise ServeError(f"workers must be >= 1, got {workers}")
    ncols = ncols or nrows
    rng = np.random.default_rng(seed)
    csrs = [
        CSRMatrix.from_coo(random_coo(nrows + 8 * i, ncols, density, seed=seed + i))
        for i in range(matrices)
    ]
    names = [f"m{i}" for i in range(matrices)]
    # a small per-matrix vector pool; the plan indexes into it
    vectors = [
        [fp16_exact_values(rng, ncols) for _ in range(4)] for _ in range(matrices)
    ]
    # serial ground truth: the engine contract says batching must be
    # bitwise-invisible, so per-request spmv on a fresh engine is the bar
    serial = SpMVEngine(kernel)
    references = [
        [serial.spmv(csr, x) for x in pool] for csr, pool in zip(csrs, vectors)
    ]

    plan = _build_plan(rng, requests, matrices, tenants, zipf_s)

    tallies = {"completed": 0, "errors": 0, "incorrect": 0}
    rejected: dict[str, int] = {}
    latencies: list[float] = []
    tally_lock = threading.Lock()

    def record(rank, vector_id, ticket, error, latency):
        with tally_lock:
            if latency is not None:  # probe requests don't shape percentiles
                latencies.append(latency)
            if error is not None:
                tallies["errors"] += 1
                return
            tallies["completed"] += 1
            if not np.array_equal(ticket.result(), references[rank][vector_id]):
                tallies["incorrect"] += 1

    frontend = ServeFrontend(
        SpMVEngine(kernel),
        workers=workers,
        flush_policy=FlushPolicy(max_batch=max_batch, max_wait_seconds=max_wait_seconds),
    )
    for name, csr in zip(names, csrs):
        frontend.register_matrix(name, csr)
    frontend.set_quota(
        _PROBE_TENANT, TenantQuota(max_requests_per_second=1.0, burst=2)
    )

    admitted = 0
    with stage_span("bench.load", kernel=kernel, mode=mode, requests=requests):
        started = time.perf_counter()
        try:
            if mode == "closed":
                _drive_closed(frontend, plan, names, vectors, workers, record)
            else:
                _drive_open(
                    frontend, plan, names, vectors, workers, record, seed, burst
                )
            admitted += len(plan)

            # quota probe: a back-to-back burst from the rate-limited
            # tenant — the bucket admits its capacity, rejects the rest
            probe_tickets = []
            for _ in range(_PROBE_REQUESTS):
                try:
                    probe_tickets.append(
                        frontend.submit(names[0], vectors[0][0], tenant=_PROBE_TENANT)
                    )
                except AdmissionError as exc:
                    rejected[exc.reason] = rejected.get(exc.reason, 0) + 1
            admitted += len(probe_tickets)
            for ticket in probe_tickets:
                record(0, 0, ticket, ticket.error(), None)
        finally:
            frontend.close()
        wall = time.perf_counter() - started

    stats = frontend.engine.stats
    resolved = tallies["completed"] + tallies["errors"]
    lost = admitted - resolved
    quantiles = (
        np.percentile(np.asarray(latencies), [50, 95, 99])
        if latencies
        else np.zeros(3)
    )
    report = frontend.run_report(
        meta={
            "source": "bench_load",
            "mode": mode,
            "seed": seed,
            "requests": requests,
            "workers": workers,
            "tenants": tenants,
            "zipf_s": zipf_s,
        }
    )
    return LoadCampaignResult(
        kernel=kernel,
        mode=mode,
        nrows=nrows,
        ncols=ncols,
        matrices=matrices,
        nnz=sum(csr.nnz for csr in csrs),
        seed=seed,
        workers=workers,
        tenants=tenants,
        zipf_s=zipf_s,
        requests=requests,
        admitted=admitted,
        completed=tallies["completed"],
        errors=tallies["errors"],
        rejected=rejected,
        lost=lost,
        incorrect=tallies["incorrect"],
        batches=stats.batches,
        coalescing=(stats.requests / stats.batches) if stats.batches else 0.0,
        latency_p50=float(quantiles[0]),
        latency_p95=float(quantiles[1]),
        latency_p99=float(quantiles[2]),
        wall_seconds=wall,
        throughput_rps=(resolved / wall) if wall > 0 else 0.0,
        run_report=report.as_dict(),
    )


def append_serve_trajectory(path: str | Path, result: LoadCampaignResult) -> int:
    """Append one campaign to the ``BENCH_serve.json`` trajectory.

    Same contract as ``BENCH_obs.json`` / ``BENCH_chaos.json``: the
    file is a JSON list, one entry per campaign; anything else there is
    a structured error, never silently overwritten.  Returns the
    trajectory length after appending.
    """
    path = Path(path)
    trajectory: list = []
    if path.exists() and path.read_text(encoding="utf-8").strip():
        try:
            trajectory = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path} is not valid JSON ({exc}); refusing to overwrite"
            ) from exc
        if not isinstance(trajectory, list):
            raise ObservabilityError(
                f"{path} holds a {type(trajectory).__name__}, expected a "
                f"trajectory list; refusing to overwrite"
            )
    campaign = result.as_dict()
    report = campaign.pop("run_report", {})
    trajectory.append(
        {
            "recorded_unix": round(time.time(), 3),
            "campaign": campaign,
            "report": report,
        }
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return len(trajectory)


def format_load_report(result: LoadCampaignResult) -> str:
    """Human-readable summary of one load campaign."""
    rejections = (
        ", ".join(f"{reason}={count}" for reason, count in sorted(result.rejected.items()))
        or "none"
    )
    lines = [
        f"serve load campaign — {result.kernel}, {result.mode} loop, "
        f"{result.matrices}x ~{result.nrows}x{result.ncols} (nnz={result.nnz}), "
        f"zipf s={result.zipf_s:g}, {result.workers} workers, "
        f"{result.tenants} tenants, seed={result.seed}",
        f"  requests   : {result.requests} planned + quota probe; "
        f"{result.admitted} admitted, {result.completed} completed, "
        f"{result.errors} errored",
        f"  rejections : {rejections}",
        f"  batching   : {result.batches} engine batches, "
        f"coalescing x{result.coalescing:.2f}",
        f"  latency    : p50 {result.latency_p50 * 1e3:.2f} ms, "
        f"p95 {result.latency_p95 * 1e3:.2f} ms, "
        f"p99 {result.latency_p99 * 1e3:.2f} ms",
        f"  throughput : {result.throughput_rps:.0f} req/s over "
        f"{result.wall_seconds:.3f} s",
    ]
    verdict = "PASS" if result.lost == 0 and result.incorrect == 0 else "FAIL"
    lines.append(
        f"  verdict    : {verdict} — {result.lost} lost, "
        f"{result.incorrect} bitwise-incorrect"
    )
    return "\n".join(lines)

"""Conversion-pipeline benchmark: cold / warm / persistent-warm prepare.

Fig. 10a of the paper measures the CSR -> bitBSR conversion tax — the
one-time cost every new tenant pays.  This harness measures the two
ways this codebase kills it:

* **direct conversion** — :meth:`~repro.formats.bitbsr.BitBSRMatrix.from_csr`
  (one-pass, no COO materialization) timed against the classic
  ``from_coo(csr.tocoo())`` route, with a bitwise identity check over
  every storage array;
* **the cache hierarchy** — one matrix served three ways:

  - *cold*: a fresh engine over an empty store directory (pays one
    ``prepare``, spills it to disk),
  - *warm*: a repeat request on the same engine (in-memory operand
    cache hit, zero new ``prepare`` calls),
  - *persistent-warm*: a **fresh engine and fresh store instance** over
    the same directory — modeling a process restart — which must serve
    from disk with *zero* conversions, proven by counters and a
    bitwise comparison of all three results.

:func:`append_convert_trajectory` appends each run to the
``BENCH_convert.json`` trajectory artifact CI uploads, with the same
refuse-to-clobber contract as the other BENCH files.
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.engine import SpMVEngine
from repro.errors import ObservabilityError
from repro.exec.middleware import stage_span
from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.csr import CSRMatrix
from repro.matrices.random import random_coo
from repro.persist import OperandStore

__all__ = [
    "ConvertBenchResult",
    "append_convert_trajectory",
    "bench_convert",
    "format_convert_report",
]

#: Storage arrays compared for the from_csr / from_coo identity check.
_BITBSR_ARRAYS = ("block_row_pointers", "block_cols", "bitmaps", "values")


@dataclass(frozen=True)
class ConvertBenchResult:
    """One cold/warm/persistent-warm conversion measurement."""

    kernel: str
    nrows: int
    ncols: int
    nnz: int
    rounds: int
    #: Best (min) single-conversion seconds over ``rounds`` direct
    #: ``from_csr`` calls — min-of-N is the noise-robust microbench
    #: statistic (the direct route does strictly less work, so its
    #: floor sits below the COO route's floor even when means overlap).
    direct_seconds: float
    #: Best single-conversion seconds over ``rounds``
    #: ``from_coo(csr.tocoo())`` calls.
    via_coo_seconds: float
    #: Every bitBSR storage array identical between the two routes.
    bitwise_identical: bool
    #: Cold-engine ``prepare`` calls (must be exactly 1) and their cost.
    cold_prepare_calls: int
    cold_prepare_seconds: float
    #: New ``prepare`` calls for the warm repeat on the same engine (0).
    warm_prepare_calls: int
    #: ``prepare`` calls for the restarted engine (0 = served from disk).
    persistent_warm_prepare_calls: int
    #: The restarted engine's store counters (hits must cover the load).
    persist: dict = field(default_factory=dict)
    #: Cold, warm and persistent-warm ``y`` all bitwise-equal.
    results_bitwise_equal: bool = False
    #: The run's merged observability document.
    run_report: dict = field(default_factory=dict)

    @property
    def direct_per_conversion(self) -> float:
        return self.direct_seconds

    @property
    def via_coo_per_conversion(self) -> float:
        return self.via_coo_seconds

    @property
    def direct_speedup(self) -> float:
        """via-COO over direct conversion time (>1 = direct is faster)."""
        return self.via_coo_seconds / max(self.direct_seconds, 1e-12)

    @property
    def passed(self) -> bool:
        """The verdict CI gates on: identity, equality, zero re-converts."""
        return (
            self.bitwise_identical
            and self.results_bitwise_equal
            and self.cold_prepare_calls == 1
            and self.warm_prepare_calls == 0
            and self.persistent_warm_prepare_calls == 0
            and self.persist.get("hits", 0) >= 1
        )

    def as_dict(self) -> dict:
        out = asdict(self)
        out.update(
            direct_per_conversion=self.direct_per_conversion,
            via_coo_per_conversion=self.via_coo_per_conversion,
            direct_speedup=self.direct_speedup,
            passed=self.passed,
        )
        return out


def _bitwise_identical(a: BitBSRMatrix, b: BitBSRMatrix) -> bool:
    if a.shape != b.shape:
        return False
    for name in _BITBSR_ARRAYS:
        x, y = getattr(a, name), getattr(b, name)
        if x.dtype != y.dtype or not np.array_equal(x, y):
            return False
    return True


def bench_convert(
    nrows: int = 1024,
    ncols: int = 1024,
    density: float = 0.02,
    *,
    rounds: int = 5,
    kernel: str = "spaden",
    seed: int = 0,
    store_dir: str | Path | None = None,
) -> ConvertBenchResult:
    """Measure direct-vs-COO conversion and the three-tier prepare path.

    ``store_dir`` is the persistent store's directory (a throwaway
    temporary directory by default); the bench always starts it empty
    so the cold phase is honestly cold.
    """
    csr = CSRMatrix.from_coo(random_coo(nrows, ncols, density, seed=seed))
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(ncols).astype(np.float32)

    # one untimed warm-up of each route, then interleaved timed rounds
    # (interleaving cancels drift; min-of-N cancels scheduler noise)
    direct = BitBSRMatrix.from_csr(csr)
    via_coo = BitBSRMatrix.from_coo(csr.tocoo())
    direct_times: list[float] = []
    via_coo_times: list[float] = []
    with stage_span("bench.convert.conversion", kernel=kernel, rounds=rounds):
        for _ in range(rounds):
            start = time.perf_counter()
            direct = BitBSRMatrix.from_csr(csr)
            direct_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            via_coo = BitBSRMatrix.from_coo(csr.tocoo())
            via_coo_times.append(time.perf_counter() - start)
    direct_seconds = min(direct_times)
    via_coo_seconds = min(via_coo_times)

    bitwise_identical = _bitwise_identical(direct, via_coo)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(store_dir) if store_dir is not None else Path(tmp)
        # cold: fresh engine, empty store — one prepare, spilled to disk
        cold_engine = SpMVEngine(
            kernel, store=OperandStore(root, name="convert-bench-cold")
        )
        with stage_span("bench.convert.cold", kernel=kernel):
            y_cold = cold_engine.spmv(csr, x)
        cold_calls = cold_engine.stats.prepare_calls
        cold_seconds = cold_engine.stats.prepare_seconds

        # warm: same engine, in-memory cache hit — zero new prepares
        with stage_span("bench.convert.warm", kernel=kernel):
            y_warm = cold_engine.spmv(csr, x)
        warm_calls = cold_engine.stats.prepare_calls - cold_calls

        # persistent-warm: fresh engine *and* fresh store over the same
        # directory — a process restart — served from disk, zero converts
        restarted = SpMVEngine(
            kernel, store=OperandStore(root, name="convert-bench-restart")
        )
        with stage_span("bench.convert.persistent_warm", kernel=kernel):
            y_persistent = restarted.spmv(csr, x)
        persistent_calls = restarted.stats.prepare_calls
        persist_stats = restarted.store.stats.as_dict()

    results_bitwise_equal = np.array_equal(y_cold, y_warm) and np.array_equal(
        y_cold, y_persistent
    )

    report = restarted.run_report(
        meta={
            "source": "bench_convert",
            "nrows": nrows,
            "ncols": ncols,
            "density": density,
            "rounds": rounds,
            "seed": seed,
        }
    )
    return ConvertBenchResult(
        kernel=kernel,
        nrows=nrows,
        ncols=ncols,
        nnz=csr.nnz,
        rounds=rounds,
        direct_seconds=direct_seconds,
        via_coo_seconds=via_coo_seconds,
        bitwise_identical=bitwise_identical,
        cold_prepare_calls=cold_calls,
        cold_prepare_seconds=cold_seconds,
        warm_prepare_calls=warm_calls,
        persistent_warm_prepare_calls=persistent_calls,
        persist=persist_stats,
        results_bitwise_equal=results_bitwise_equal,
        run_report=report.as_dict(),
    )


def append_convert_trajectory(path: str | Path, result: ConvertBenchResult) -> int:
    """Append one run to the ``BENCH_convert.json`` trajectory.

    Same contract as the other BENCH artifacts: a JSON list, one entry
    per recorded run (``recorded_unix`` + ``bench`` + ``report``);
    anything else at ``path`` is a structured error, never silently
    overwritten.  Returns the trajectory length after appending.
    """
    path = Path(path)
    trajectory: list = []
    if path.exists() and path.read_text(encoding="utf-8").strip():
        try:
            trajectory = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path} is not valid JSON ({exc}); refusing to overwrite"
            ) from exc
        if not isinstance(trajectory, list):
            raise ObservabilityError(
                f"{path} holds a {type(trajectory).__name__}, expected a "
                f"trajectory list; refusing to overwrite"
            )
    bench = result.as_dict()
    report = bench.pop("run_report", {})
    trajectory.append(
        {
            "recorded_unix": round(time.time(), 3),
            "bench": bench,
            "report": report,
        }
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return len(trajectory)


def format_convert_report(result: ConvertBenchResult) -> str:
    """Human-readable summary of one :func:`bench_convert` run."""
    persist = result.persist
    lines = [
        f"convert bench — {result.kernel} on {result.nrows}x{result.ncols}, "
        f"nnz={result.nnz}, rounds={result.rounds}",
        f"  direct (from_csr) : {result.direct_per_conversion * 1e3:9.3f} ms/conversion",
        f"  via COO           : {result.via_coo_per_conversion * 1e3:9.3f} ms/conversion "
        f"({result.direct_speedup:.2f}x slower than direct)",
        f"  bitwise identity  : {'equal' if result.bitwise_identical else 'MISMATCH'}",
        f"  cold              : {result.cold_prepare_calls} prepare(s), "
        f"{result.cold_prepare_seconds * 1e3:.3f} ms",
        f"  warm              : {result.warm_prepare_calls} new prepare(s)",
        f"  persistent-warm   : {result.persistent_warm_prepare_calls} prepare(s) "
        f"after restart ({persist.get('hits', 0)} disk hit(s))",
        f"  results           : "
        f"{'bitwise-equal across all tiers' if result.results_bitwise_equal else 'MISMATCH'}",
        f"  verdict           : {'PASS' if result.passed else 'FAIL'}",
    ]
    report = result.run_report
    if report:
        spans = report.get("spans", [])
        lines.append(
            f"  obs               : {len(spans)} spans, "
            f"{len(report.get('metrics', {}).get('metrics', []))} metrics"
        )
    return "\n".join(lines)

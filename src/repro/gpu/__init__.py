"""SIMT + tensor-core simulator substrate.

The paper's contribution lives at the CUDA register level; since this
reproduction runs without a GPU, this package simulates the parts of the
machine the paper manipulates:

* a 32-lane lockstep warp (:mod:`repro.gpu.warp`),
* WMMA fragments with the *undocumented* register<->element mapping the
  paper reverse engineers in §3 (:mod:`repro.gpu.fragment`) — the mapping
  here is the simulated hardware's ground truth, and
  :mod:`repro.core.reverse_engineering` rediscovers it by probing exactly
  like the paper does,
* an MMA unit with mixed-precision semantics (:mod:`repro.gpu.mma`),
* a global-memory model that counts bytes and coalesced transactions per
  warp access (:mod:`repro.gpu.memory`),
* per-kernel execution counters (:mod:`repro.gpu.counters`) feeding the
  roofline model in :mod:`repro.perf`,
* named GPU specs for V100 and L40 (:mod:`repro.gpu.spec`).
"""

from repro.gpu.cache import CacheStats, SetAssociativeCache, replay_hit_rate
from repro.gpu.counters import ExecutionStats
from repro.gpu.fragment import (
    Fragment,
    FragmentKind,
    element_owner,
    lane_register_element,
    portion_of_register,
    registers_of_portion,
)
from repro.gpu.memory import GlobalMemory, sector_count
from repro.gpu.mma import MMAUnit, Precision, to_tf32
from repro.gpu.scheduler import KernelResources, OccupancyReport, occupancy
from repro.gpu.spec import GPUSpec, get_gpu, known_gpus
from repro.gpu.warp import Warp
from repro.gpu.wmma import fill_fragment, load_matrix_sync, mma_sync, store_matrix_sync

__all__ = [
    "CacheStats",
    "SetAssociativeCache",
    "replay_hit_rate",
    "KernelResources",
    "OccupancyReport",
    "occupancy",
    "ExecutionStats",
    "Fragment",
    "FragmentKind",
    "element_owner",
    "lane_register_element",
    "portion_of_register",
    "registers_of_portion",
    "GlobalMemory",
    "sector_count",
    "MMAUnit",
    "Precision",
    "to_tf32",
    "GPUSpec",
    "get_gpu",
    "known_gpus",
    "Warp",
    "fill_fragment",
    "load_matrix_sync",
    "mma_sync",
    "store_matrix_sync",
]

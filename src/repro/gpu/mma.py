"""The tensor-core MMA unit: ``D = A @ B + C`` on 16x16x16 fragments.

Supports the three input precisions relevant to the paper's hardware:

* ``FP16``  — inputs rounded to half precision, FP32 accumulate (V100's
  native mode and the paper's storage precision),
* ``TF32``  — inputs truncated to a 10-bit mantissa, FP32 accumulate
  (L40 / Ampere+ default for FP32 data),
* ``FP32``  — exact single-precision reference (for correctness tests).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.constants import FRAGMENT_DIM
from repro.errors import NumericalError, SimulationError
from repro.gpu.counters import ExecutionStats
from repro.gpu.fragment import Fragment, FragmentKind, element_owner

__all__ = ["Precision", "to_tf32", "MMAUnit"]


class Precision(enum.Enum):
    """Input rounding applied by the MMA unit (accumulation is FP32)."""

    FP16 = "fp16"
    TF32 = "tf32"
    FP32 = "fp32"


def to_tf32(x: np.ndarray) -> np.ndarray:
    """Round float32 values to TF32 (8-bit exponent, 10-bit mantissa).

    Implemented as round-to-nearest-even on the low 13 mantissa bits,
    which matches Ampere's conversion behaviour.
    """
    bits = np.asarray(x, dtype=np.float32).view(np.uint32)
    # round to nearest even at bit 13
    round_bit = np.uint32(1 << 12)
    lsb = (bits >> np.uint32(13)) & np.uint32(1)
    rounded = bits + round_bit - np.uint32(1) + lsb
    return (rounded & np.uint32(0xFFFFE000)).view(np.float32).copy()


def _round_inputs(matrix: np.ndarray, precision: Precision) -> np.ndarray:
    if precision is Precision.FP16:
        return matrix.astype(np.float16).astype(np.float32)
    if precision is Precision.TF32:
        return to_tf32(matrix.astype(np.float32))
    return matrix.astype(np.float32)


class MMAUnit:
    """One tensor core executing warp-synchronous MMA operations."""

    def __init__(
        self,
        precision: Precision = Precision.FP16,
        stats: ExecutionStats | None = None,
        check_overflow: bool = False,
    ):
        self.precision = precision
        self.stats = stats if stats is not None else ExecutionStats()
        #: When True, an accumulator register that leaves the finite range
        #: (fp16 input saturation, fp32 accumulation overflow) raises
        #: :class:`~repro.errors.NumericalError` instead of silently
        #: propagating Inf/NaN into y.  The robustness dispatcher enables
        #: this on the simulated path to trigger precision fallback.
        self.check_overflow = check_overflow

    def mma(self, a: Fragment, b: Fragment, c: Fragment) -> Fragment:
        """``wmma::mma_sync``: D = A @ B + C, returning a new accumulator.

        Inputs are rounded to the unit's precision; products are summed in
        float32 exactly as the hardware's FP32 accumulator does.
        """
        if a.kind is not FragmentKind.MATRIX_A:
            raise SimulationError("first operand must be a MATRIX_A fragment")
        if b.kind is not FragmentKind.MATRIX_B:
            raise SimulationError("second operand must be a MATRIX_B fragment")
        if c.kind is not FragmentKind.ACCUMULATOR:
            raise SimulationError("third operand must be an ACCUMULATOR fragment")
        am = _round_inputs(a.to_matrix().astype(np.float32), self.precision)
        bm = _round_inputs(b.to_matrix().astype(np.float32), self.precision)
        cm = c.to_matrix().astype(np.float32)
        # hardware propagates Inf/NaN silently; the explicit overflow
        # check below replaces numpy's warning
        with np.errstate(invalid="ignore", over="ignore"):
            dm = (am @ bm + cm).astype(np.float32)
        if self.check_overflow and not np.isfinite(dm).all():
            row, col = (int(v) for v in np.argwhere(~np.isfinite(dm))[0])
            lane, register = element_owner(FragmentKind.ACCUMULATOR, row, col)
            raise NumericalError(
                f"MMA accumulator overflow: element ({row}, {col}) = {dm[row, col]!r} "
                f"(lane {lane}, register x[{register}]) left the finite "
                f"{self.precision.value} / fp32-accumulate range"
            )
        d = Fragment(FragmentKind.ACCUMULATOR, np.float32)
        d.load_matrix(dm)
        self.stats.mma_ops += 1
        self.stats.warp_instructions += 1
        return d

    def matmul_dense(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Tile a dense matmul onto 16x16x16 MMAs (utility for SpMM tests).

        Shapes must be multiples of 16.
        """
        m, k = a.shape
        k2, n = b.shape
        if k != k2 or m % FRAGMENT_DIM or n % FRAGMENT_DIM or k % FRAGMENT_DIM:
            raise SimulationError("matmul_dense requires 16-aligned shapes")
        out = np.zeros((m, n), dtype=np.float32)
        for i in range(0, m, FRAGMENT_DIM):
            for j in range(0, n, FRAGMENT_DIM):
                acc = Fragment(FragmentKind.ACCUMULATOR, np.float32)
                for p in range(0, k, FRAGMENT_DIM):
                    fa = Fragment(FragmentKind.MATRIX_A, np.float32)
                    fb = Fragment(FragmentKind.MATRIX_B, np.float32)
                    fa.load_matrix(a[i : i + 16, p : p + 16])
                    fb.load_matrix(b[p : p + 16, j : j + 16])
                    acc = self.mma(fa, fb, acc)
                out[i : i + 16, j : j + 16] = acc.to_matrix()
        return out

"""Set-associative L2 cache simulator.

The roofline model assumes gathered operands (the x vector) are
L2-resident after first touch — true on both evaluated boards for every
Table-1 matrix (x <= 4 MB vs 6 MB V100 / 96 MB L40 L2).  This module
makes the assumption *checkable*: replay a kernel's sector-access trace
through a set-associative LRU cache and measure the actual hit rate.

Used by the cache-validation tests and available for what-if studies
(e.g. how CSR SpMV degrades once x outgrows the L2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SECTOR_BYTES
from repro.errors import SimulationError

__all__ = ["CacheStats", "SetAssociativeCache", "replay_hit_rate"]


@dataclass
class CacheStats:
    """Aggregate access outcome counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0

    @property
    def miss_bytes(self) -> int:
        """DRAM traffic implied by the misses."""
        return self.misses * SECTOR_BYTES


class SetAssociativeCache:
    """LRU set-associative cache over 32-byte sectors.

    State is a (sets, ways) tag array plus an LRU counter array; lookups
    are O(ways) NumPy operations, so replaying multi-million-access
    traces stays fast when batched through :func:`replay_hit_rate`.
    """

    def __init__(self, capacity_bytes: int, ways: int = 16):
        if capacity_bytes <= 0 or ways <= 0:
            raise SimulationError("capacity and associativity must be positive")
        lines = capacity_bytes // SECTOR_BYTES
        if lines < ways:
            raise SimulationError("cache smaller than one set")
        self.sets = lines // ways
        self.ways = ways
        self.capacity_bytes = self.sets * ways * SECTOR_BYTES
        # tag value -1 marks an empty way
        self._tags = np.full((self.sets, ways), -1, dtype=np.int64)
        self._stamps = np.zeros((self.sets, ways), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def access(self, sector: int) -> bool:
        """Touch one sector; returns True on hit."""
        self._clock += 1
        set_idx = sector % self.sets
        tags = self._tags[set_idx]
        self.stats.accesses += 1
        hit_ways = np.flatnonzero(tags == sector)
        if hit_ways.size:
            self._stamps[set_idx, hit_ways[0]] = self._clock
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        victim = int(np.argmin(self._stamps[set_idx]))
        if tags[victim] != -1:
            self.stats.evictions += 1
        tags[victim] = sector
        self._stamps[set_idx, victim] = self._clock
        return False

    def access_many(self, sectors: np.ndarray) -> np.ndarray:
        """Touch a sequence of sectors; returns a per-access hit mask."""
        out = np.empty(len(sectors), dtype=bool)
        for i, s in enumerate(np.asarray(sectors, dtype=np.int64)):
            out[i] = self.access(int(s))
        return out


def replay_hit_rate(
    byte_addresses: np.ndarray,
    capacity_bytes: int,
    ways: int = 16,
    sample_limit: int = 2_000_000,
) -> CacheStats:
    """Replay an address trace through a fresh cache; returns its stats.

    Long traces are truncated to ``sample_limit`` accesses — hit rates of
    streaming/reuse mixtures converge long before that.
    """
    addresses = np.asarray(byte_addresses, dtype=np.int64)[:sample_limit]
    cache = SetAssociativeCache(capacity_bytes, ways)
    cache.access_many(addresses // SECTOR_BYTES)
    return cache.stats

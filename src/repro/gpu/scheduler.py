"""SM occupancy and grid-scheduling model.

Converts a kernel's warp count and per-warp resource usage into the
number of concurrently resident warps — the quantity behind the roofline
model's latency-chain term and the low-occupancy behaviour of Spaden on
short matrices (few block rows -> few warps -> unhidden latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpu.spec import GPUSpec

__all__ = ["KernelResources", "OccupancyReport", "occupancy"]

#: Architectural per-SM limits (Volta through Ada share these).
MAX_WARPS_PER_SM: int = 48
MAX_THREADS_PER_SM: int = 1536
MAX_BLOCKS_PER_SM: int = 24
REGISTER_FILE_PER_SM: int = 65536
SHARED_MEMORY_PER_SM: int = 100 * 1024


@dataclass(frozen=True)
class KernelResources:
    """Per-thread-block resource footprint of a kernel launch."""

    threads_per_block: int = 256
    registers_per_thread: int = 32
    shared_bytes_per_block: int = 0

    @property
    def warps_per_block(self) -> int:
        return -(-self.threads_per_block // 32)


@dataclass(frozen=True)
class OccupancyReport:
    """Outcome of the occupancy calculation for one launch."""

    blocks_per_sm: int
    resident_warps_per_sm: int
    resident_warps_total: int
    limiter: str
    occupancy: float

    def concurrency(self, warps_launched: int) -> int:
        """Warps actually in flight for a given launch size."""
        return max(1, min(warps_launched, self.resident_warps_total))


def occupancy(resources: KernelResources, gpu: GPUSpec) -> OccupancyReport:
    """Classic CUDA occupancy calculation: the binding per-SM limit."""
    if resources.threads_per_block <= 0 or resources.threads_per_block > 1024:
        raise SimulationError("threads_per_block must be in (0, 1024]")
    if resources.registers_per_thread <= 0 or resources.registers_per_thread > 255:
        raise SimulationError("registers_per_thread must be in (0, 255]")
    if resources.shared_bytes_per_block < 0:
        raise SimulationError("shared_bytes_per_block must be non-negative")
    if resources.shared_bytes_per_block > SHARED_MEMORY_PER_SM:
        raise SimulationError(
            f"shared_bytes_per_block ({resources.shared_bytes_per_block}) exceeds "
            f"the {SHARED_MEMORY_PER_SM} B shared memory of one SM"
        )

    limits = {
        "blocks": MAX_BLOCKS_PER_SM,
        "threads": MAX_THREADS_PER_SM // resources.threads_per_block,
        "registers": REGISTER_FILE_PER_SM
        // max(1, resources.registers_per_thread * resources.threads_per_block),
    }
    if resources.shared_bytes_per_block > 0:
        limits["shared"] = SHARED_MEMORY_PER_SM // resources.shared_bytes_per_block
    blocks = max(0, min(limits.values()))
    if blocks == 0:
        raise SimulationError("kernel over-subscribes a single SM")
    limiter = min(limits, key=limits.get)
    # shared memory is the limit the programmer controls most directly;
    # when it ties another cap, report it as the binding one
    if limits.get("shared") == limits[limiter]:
        limiter = "shared"
    warps_per_sm = min(MAX_WARPS_PER_SM, blocks * resources.warps_per_block)
    return OccupancyReport(
        blocks_per_sm=blocks,
        resident_warps_per_sm=warps_per_sm,
        resident_warps_total=warps_per_sm * gpu.sm_count,
        limiter=limiter,
        occupancy=warps_per_sm / MAX_WARPS_PER_SM,
    )

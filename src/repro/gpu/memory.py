"""Global-memory model with coalescing-aware transaction counting.

A warp access is described by the byte addresses each active lane touches.
The model counts the distinct 32-byte sectors those addresses fall in —
the same rule NVIDIA hardware uses to split a warp's request into DRAM
transactions.  Fully coalesced float32 loads by 32 lanes touch 4 sectors;
a stride-N gather touches up to 32.

Alongside the achieved sector count, every access also records the
*ideal* count — the minimum sectors a perfectly coalesced access of the
same active footprint needs — so coalescing efficiency can be read off
:class:`~repro.gpu.counters.ExecutionStats` directly.  When a tracer is
installed via :mod:`repro.gpu.instrument`, each access is additionally
reported lane-by-lane for race and efficiency analysis.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SECTOR_BYTES
from repro.errors import MemoryAccessError, RaceError, SimulationError
from repro.gpu import instrument
from repro.gpu.counters import ExecutionStats

__all__ = ["sector_count", "ideal_sector_count", "GlobalMemory"]


def sector_count(byte_addresses: np.ndarray) -> int:
    """Number of distinct 32-byte sectors covering the given addresses."""
    a = np.asarray(byte_addresses, dtype=np.int64)
    if a.size == 0:
        return 0
    return int(np.unique(a // SECTOR_BYTES).size)


def ideal_sector_count(distinct_elements: int, itemsize: int) -> int:
    """Minimum sectors any layout of the access's footprint needs.

    The footprint is the set of *distinct* elements the warp touches —
    a 32-lane broadcast of one word needs a single sector, and a
    perfectly coalesced unit-stride access packs its ``n`` distinct
    elements into ``ceil(n * itemsize / 32)`` sectors.
    """
    if distinct_elements <= 0:
        return 0
    return -(-distinct_elements * itemsize // SECTOR_BYTES)


class GlobalMemory:
    """A set of named device arrays plus an access-statistics recorder.

    Arrays are registered with a (simulated) base address so that accesses
    to *different* arrays never share sectors, mirroring separate
    ``cudaMalloc`` allocations.
    """

    #: Allocation granularity for simulated base addresses.
    _ALIGN = 256

    def __init__(self, stats: ExecutionStats | None = None):
        self.stats = stats if stats is not None else ExecutionStats()
        self._arrays: dict[str, np.ndarray] = {}
        self._base: dict[str, int] = {}
        self._next_base = 0

    # -- allocation ----------------------------------------------------------
    def register(self, name: str, array: np.ndarray) -> np.ndarray:
        """Place ``array`` in simulated global memory under ``name``."""
        if name in self._arrays:
            raise SimulationError(f"array {name!r} already registered")
        a = np.ascontiguousarray(array)
        self._arrays[name] = a
        self._base[name] = self._next_base
        self._next_base += (a.nbytes + self._ALIGN - 1) // self._ALIGN * self._ALIGN + self._ALIGN
        return a

    def array(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise SimulationError(f"unknown array {name!r}") from None

    # -- validation helpers --------------------------------------------------
    def _resolve(
        self, name: str, kind: str, indices: np.ndarray, mask: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Common bounds checking; returns (arr, idx, mask, active indices)."""
        arr = self.array(name)
        idx = np.asarray(indices, dtype=np.int64)
        if mask is None:
            mask = np.ones(idx.shape, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != idx.shape:
                raise SimulationError("mask and indices shapes differ")
        active = idx[mask]
        if active.size and (active.min() < 0 or active.max() >= arr.size):
            lanes = np.flatnonzero(mask & ((idx < 0) | (idx >= arr.size)))
            lane = int(lanes[0])
            raise MemoryAccessError(
                f"out-of-bounds {kind} on {name!r}: lane {lane} requested index "
                f"{int(idx[lane])} of {arr.size} elements "
                f"(offending lanes {lanes.tolist()})",
                array=name, kind=kind, lane=lane, index=int(idx[lane]), size=int(arr.size),
            )
        return arr, idx, mask, active

    def _trace(
        self,
        name: str,
        kind: str,
        idx: np.ndarray,
        mask: np.ndarray,
        itemsize: int,
        sectors: int,
        ideal: int,
    ) -> None:
        tracer = instrument.get_tracer()
        if tracer is not None:
            tracer.on_global_access(self, name, kind, idx, mask, itemsize, sectors, ideal)

    # -- warp accesses ------------------------------------------------------------
    def warp_load(
        self,
        name: str,
        indices: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Gather one element per active lane; count bytes + transactions.

        ``indices`` holds one element index per lane; ``mask`` marks active
        lanes (inactive lanes contribute neither bytes nor sectors, which
        is exactly how predicated-off lanes behave on hardware — the
        mechanism bitBSR decoding exploits to skip zeros).
        Returns a full-width array with zeros in inactive lanes.
        """
        arr, idx, mask, active = self._resolve(name, "load", indices, mask)
        itemsize = arr.itemsize
        addresses = self._base[name] + active * itemsize
        # hardware fetches cross-sector elements with two transactions
        end_addresses = addresses + itemsize - 1
        sectors = sector_count(np.concatenate([addresses, end_addresses]))
        ideal = ideal_sector_count(int(np.unique(active).size), itemsize)
        self.stats.global_load_bytes += int(active.size) * itemsize
        self.stats.load_transactions += sectors
        self.stats.ideal_load_transactions += ideal
        self.stats.warp_instructions += 1
        self._trace(name, "load", idx, mask, itemsize, sectors, ideal)
        out = np.zeros(idx.shape, dtype=arr.dtype)
        out[mask] = arr[active]
        return out

    def warp_store(
        self,
        name: str,
        indices: np.ndarray,
        values: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """Scatter one element per active lane; count bytes + transactions."""
        arr, idx, mask, active = self._resolve(name, "store", indices, mask)
        vals = np.asarray(values)
        if active.size and np.unique(active).size != active.size:
            first = int(np.flatnonzero(np.bincount(active) > 1)[0])
            lanes = np.flatnonzero(mask & (idx == first))
            raise RaceError(
                f"intra-warp write conflict on {name!r}: lanes {lanes.tolist()} "
                f"all store to index {first} in one warp-step without atomics",
                array=name, index=first, lanes=lanes.tolist(),
                check="intra-warp-race", coord=(name, first) + tuple(lanes.tolist()),
            )
        itemsize = arr.itemsize
        addresses = self._base[name] + active * itemsize
        sectors = sector_count(np.concatenate([addresses, addresses + itemsize - 1]))
        # store indices are unique (enforced above), so lanes == footprint
        ideal = ideal_sector_count(int(active.size), itemsize)
        self.stats.global_store_bytes += int(active.size) * itemsize
        self.stats.store_transactions += sectors
        self.stats.ideal_store_transactions += ideal
        self.stats.warp_instructions += 1
        self._trace(name, "store", idx, mask, itemsize, sectors, ideal)
        arr[active] = np.asarray(vals[mask], dtype=arr.dtype)

    def warp_atomic_add(
        self,
        name: str,
        indices: np.ndarray,
        values: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """Atomic adds (used by COO/edge-centric kernels); conflicts allowed."""
        arr, idx, mask, active = self._resolve(name, "atomic", indices, mask)
        vals = np.asarray(values)
        itemsize = arr.itemsize
        addresses = self._base[name] + active * itemsize
        sectors = sector_count(np.concatenate([addresses, addresses + itemsize - 1]))
        self.stats.global_load_bytes += int(active.size) * itemsize
        self.stats.global_store_bytes += int(active.size) * itemsize
        self.stats.load_transactions += sectors
        self.stats.store_transactions += sectors
        ideal = ideal_sector_count(int(np.unique(active).size), itemsize)
        self.stats.ideal_load_transactions += ideal
        self.stats.ideal_store_transactions += ideal
        self.stats.atomic_ops += int(active.size)
        self.stats.warp_instructions += 1
        self._trace(name, "atomic", idx, mask, itemsize, sectors, ideal)
        np.add.at(arr, active, vals[mask].astype(arr.dtype))

"""Global-memory model with coalescing-aware transaction counting.

A warp access is described by the byte addresses each active lane touches.
The model counts the distinct 32-byte sectors those addresses fall in —
the same rule NVIDIA hardware uses to split a warp's request into DRAM
transactions.  Fully coalesced float32 loads by 32 lanes touch 4 sectors;
a stride-N gather touches up to 32.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SECTOR_BYTES
from repro.errors import SimulationError
from repro.gpu.counters import ExecutionStats

__all__ = ["sector_count", "GlobalMemory"]


def sector_count(byte_addresses: np.ndarray) -> int:
    """Number of distinct 32-byte sectors covering the given addresses."""
    a = np.asarray(byte_addresses, dtype=np.int64)
    if a.size == 0:
        return 0
    return int(np.unique(a // SECTOR_BYTES).size)


class GlobalMemory:
    """A set of named device arrays plus an access-statistics recorder.

    Arrays are registered with a (simulated) base address so that accesses
    to *different* arrays never share sectors, mirroring separate
    ``cudaMalloc`` allocations.
    """

    #: Allocation granularity for simulated base addresses.
    _ALIGN = 256

    def __init__(self, stats: ExecutionStats | None = None):
        self.stats = stats if stats is not None else ExecutionStats()
        self._arrays: dict[str, np.ndarray] = {}
        self._base: dict[str, int] = {}
        self._next_base = 0

    # -- allocation ----------------------------------------------------------
    def register(self, name: str, array: np.ndarray) -> np.ndarray:
        """Place ``array`` in simulated global memory under ``name``."""
        if name in self._arrays:
            raise SimulationError(f"array {name!r} already registered")
        a = np.ascontiguousarray(array)
        self._arrays[name] = a
        self._base[name] = self._next_base
        self._next_base += (a.nbytes + self._ALIGN - 1) // self._ALIGN * self._ALIGN + self._ALIGN
        return a

    def array(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise SimulationError(f"unknown array {name!r}") from None

    # -- warp accesses ------------------------------------------------------------
    def warp_load(
        self,
        name: str,
        indices: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Gather one element per active lane; count bytes + transactions.

        ``indices`` holds one element index per lane; ``mask`` marks active
        lanes (inactive lanes contribute neither bytes nor sectors, which
        is exactly how predicated-off lanes behave on hardware — the
        mechanism bitBSR decoding exploits to skip zeros).
        Returns a full-width array with zeros in inactive lanes.
        """
        arr = self.array(name)
        idx = np.asarray(indices, dtype=np.int64)
        if mask is None:
            mask = np.ones(idx.shape, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != idx.shape:
                raise SimulationError("mask and indices shapes differ")
        active = idx[mask]
        if active.size:
            if active.min() < 0 or active.max() >= arr.size:
                lanes = np.flatnonzero(mask & ((idx < 0) | (idx >= arr.size)))
                raise SimulationError(
                    f"out-of-bounds load from {name!r} "
                    f"(index range [{active.min()}, {active.max()}], size {arr.size}, "
                    f"lanes {lanes.tolist()})"
                )
        itemsize = arr.itemsize
        addresses = self._base[name] + active * itemsize
        # hardware fetches cross-sector elements with two transactions
        end_addresses = addresses + itemsize - 1
        sectors = sector_count(np.concatenate([addresses, end_addresses]))
        self.stats.global_load_bytes += int(active.size) * itemsize
        self.stats.load_transactions += sectors
        self.stats.warp_instructions += 1
        out = np.zeros(idx.shape, dtype=arr.dtype)
        out[mask] = arr[active]
        return out

    def warp_store(
        self,
        name: str,
        indices: np.ndarray,
        values: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """Scatter one element per active lane; count bytes + transactions."""
        arr = self.array(name)
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values)
        if mask is None:
            mask = np.ones(idx.shape, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
        active = idx[mask]
        if active.size:
            if active.min() < 0 or active.max() >= arr.size:
                lanes = np.flatnonzero(mask & ((idx < 0) | (idx >= arr.size)))
                raise SimulationError(
                    f"out-of-bounds store to {name!r} "
                    f"(index range [{active.min()}, {active.max()}], size {arr.size}, "
                    f"lanes {lanes.tolist()})"
                )
            if np.unique(active).size != active.size:
                first = int(np.flatnonzero(np.bincount(active) > 1)[0])
                lanes = np.flatnonzero(mask & (idx == first))
                raise SimulationError(
                    f"intra-warp write conflict on {name!r}: lanes {lanes.tolist()} "
                    f"all store to index {first}"
                )
        itemsize = arr.itemsize
        addresses = self._base[name] + active * itemsize
        sectors = sector_count(np.concatenate([addresses, addresses + itemsize - 1]))
        self.stats.global_store_bytes += int(active.size) * itemsize
        self.stats.store_transactions += sectors
        self.stats.warp_instructions += 1
        arr[active] = np.asarray(vals[mask], dtype=arr.dtype)

    def warp_atomic_add(
        self,
        name: str,
        indices: np.ndarray,
        values: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """Atomic adds (used by COO/edge-centric kernels); conflicts allowed."""
        arr = self.array(name)
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values)
        if mask is None:
            mask = np.ones(idx.shape, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
        active = idx[mask]
        if active.size and (active.min() < 0 or active.max() >= arr.size):
            lanes = np.flatnonzero(mask & ((idx < 0) | (idx >= arr.size)))
            raise SimulationError(
                f"out-of-bounds atomic on {name!r} "
                f"(index range [{active.min()}, {active.max()}], size {arr.size}, "
                f"lanes {lanes.tolist()})"
            )
        itemsize = arr.itemsize
        addresses = self._base[name] + active * itemsize
        sectors = sector_count(np.concatenate([addresses, addresses + itemsize - 1]))
        self.stats.global_load_bytes += int(active.size) * itemsize
        self.stats.global_store_bytes += int(active.size) * itemsize
        self.stats.load_transactions += sectors
        self.stats.store_transactions += sectors
        self.stats.atomic_ops += int(active.size)
        self.stats.warp_instructions += 1
        np.add.at(arr, active, vals[mask].astype(arr.dtype))

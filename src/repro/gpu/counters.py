"""Execution counters collected while simulating a kernel.

These are the inputs to the roofline model in :mod:`repro.perf.model`.
Counters are *exact* for the simulated execution: the memory model counts
every warp access's useful bytes and its 32-byte-sector transactions, and
the compute side counts CUDA-core operations and tensor-core MMAs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["ExecutionStats"]


@dataclass
class ExecutionStats:
    """Additive per-kernel counters."""

    #: Useful bytes gathered from global memory (sum of active-lane loads).
    global_load_bytes: int = 0
    #: Useful bytes written to global memory.
    global_store_bytes: int = 0
    #: 32-byte-sector transactions issued for loads (coalescing-aware).
    load_transactions: int = 0
    #: 32-byte-sector transactions issued for stores.
    store_transactions: int = 0
    #: Minimum load sectors a perfectly coalesced access pattern with the
    #: same active-lane footprint would have issued.  Recorded by the
    #: lane-level memory model only (analytic profiles leave it at 0), so
    #: ``load_coalescing`` is meaningful exactly for simulated runs.
    ideal_load_transactions: int = 0
    #: Minimum store sectors for a perfectly coalesced pattern.
    ideal_store_transactions: int = 0
    #: Scalar floating-point operations executed on CUDA cores.
    cuda_flops: int = 0
    #: Integer / logic / address operations on CUDA cores (decode cost).
    cuda_int_ops: int = 0
    #: Number of 16x16x16 MMA operations issued to tensor cores.
    mma_ops: int = 0
    #: Bytes staged through shared memory (the WMMA indirection Spaden skips).
    shared_bytes: int = 0
    #: Warp-level instructions issued (approximate issue pressure).
    warp_instructions: int = 0
    #: Warps launched by the kernel.
    warps_launched: int = 0
    #: Atomic read-modify-write operations on global memory.
    atomic_ops: int = 0
    #: Degradation events recorded by the execution-layer chain walker:
    #: each entry is a :class:`repro.exec.result.DegradationEvent`
    #: describing why a kernel was abandoned and which fallback replaced
    #: it.  Empty for a clean, full-speed execution.
    degradation_log: list = field(default_factory=list)

    # -- derived ------------------------------------------------------------
    @property
    def degradations(self) -> int:
        """Number of fallback steps the execution needed (0 = clean run)."""
        return len(self.degradation_log)

    @property
    def dram_bytes(self) -> int:
        """DRAM traffic implied by the transaction counts (32 B/sector)."""
        return (self.load_transactions + self.store_transactions) * 32

    @property
    def total_flops(self) -> int:
        """All floating-point work: CUDA flops + MMA flops.

        One 16x16x16 MMA is 2 * 16 * 16 * 16 = 8192 flops.
        """
        return self.cuda_flops + self.mma_ops * 8192

    @property
    def load_coalescing(self) -> float:
        """Achieved vs. ideal load-sector ratio (1.0 = fully coalesced).

        Only the lane-level memory model records the ideal counts; when
        they are absent (analytic profiles) this reports 1.0 rather than
        claiming an efficiency that was never measured.
        """
        if self.ideal_load_transactions == 0 or self.load_transactions == 0:
            return 1.0
        return self.ideal_load_transactions / self.load_transactions

    @property
    def store_coalescing(self) -> float:
        """Achieved vs. ideal store-sector ratio (1.0 = fully coalesced)."""
        if self.ideal_store_transactions == 0 or self.store_transactions == 0:
            return 1.0
        return self.ideal_store_transactions / self.store_transactions

    @property
    def load_efficiency(self) -> float:
        """Useful bytes per DRAM byte moved for loads (1.0 = perfectly
        coalesced full sectors)."""
        moved = self.load_transactions * 32
        return self.global_load_bytes / moved if moved else 1.0

    # -- combination ---------------------------------------------------------
    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Accumulate another stats object into this one (in place)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: float) -> "ExecutionStats":
        """Return a copy with every counter multiplied by ``factor``.

        Used to extrapolate sampled simulation (a subset of warps executed
        through the lane-accurate simulator) to the full kernel.  The
        degradation log is carried over as-is: events are facts about the
        execution, not extrapolatable counters.
        """
        out = ExecutionStats()
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, list):
                setattr(out, f.name, list(value))
            else:
                setattr(out, f.name, int(round(value * factor)))
        return out

    def copy(self) -> "ExecutionStats":
        return self.scaled(1.0)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

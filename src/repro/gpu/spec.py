"""Named GPU specifications used by the performance model.

Numbers are the public datasheet values for the two boards of the paper's
evaluation (§5.1): NVIDIA V100 (1st-gen tensor cores) and L40 (4th-gen),
plus A100 for extension experiments.  The roofline model only consumes
aggregate throughputs, so datasheet precision is sufficient — the paper's
*relative* results are what we reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "get_gpu", "known_gpus", "V100", "L40", "A100"]


@dataclass(frozen=True)
class GPUSpec:
    """Aggregate hardware capability of one GPU board."""

    name: str
    #: Streaming multiprocessors.
    sm_count: int
    #: Tensor cores across the chip (paper: L40 568, V100 640).
    tensor_cores: int
    #: FP32 CUDA cores across the chip.
    cuda_cores: int
    #: Boost clock, GHz.
    clock_ghz: float
    #: DRAM bandwidth, GB/s.
    mem_bandwidth_gbps: float
    #: Peak FP32 throughput on CUDA cores, TFLOP/s.
    fp32_tflops: float
    #: Peak dense tensor-core throughput (FP16 in / FP32 acc), TFLOP/s.
    tensor_tflops: float
    #: L2 cache size, bytes.
    l2_bytes: int
    #: Fixed kernel-launch latency, microseconds.
    launch_overhead_us: float
    #: Fraction of datasheet DRAM bandwidth a tuned SpMV sustains.  SpMV
    #: streams with short bursts and index-dependent gathers, so sustained
    #: bandwidth sits well below STREAM-style peak.
    mem_efficiency: float
    #: Fraction of peak compute sustained by irregular kernels.
    compute_efficiency: float
    #: Effective L2 bandwidth as a multiple of sustained DRAM bandwidth
    #: for broadcast/partial-sector-heavy access (calibrated; datasheet
    #: peaks are higher).  V100's HBM2 narrows the L2:DRAM gap less than
    #: Ada's GDDR6 does.
    l2_ratio: float = 2.5

    @property
    def effective_bandwidth(self) -> float:
        """Sustained bandwidth in bytes/second."""
        return self.mem_bandwidth_gbps * 1e9 * self.mem_efficiency

    @property
    def effective_fp32(self) -> float:
        """Sustained FP32 FLOP/s on CUDA cores."""
        return self.fp32_tflops * 1e12 * self.compute_efficiency

    @property
    def effective_tensor(self) -> float:
        """Sustained tensor-core FLOP/s."""
        return self.tensor_tflops * 1e12 * self.compute_efficiency


V100 = GPUSpec(
    name="V100",
    sm_count=80,
    tensor_cores=640,
    cuda_cores=5120,
    clock_ghz=1.53,
    mem_bandwidth_gbps=900.0,
    fp32_tflops=15.7,
    tensor_tflops=125.0,
    l2_bytes=6 * 1024 * 1024,
    launch_overhead_us=5.0,
    mem_efficiency=0.78,
    compute_efficiency=0.55,
    l2_ratio=4.0,
)

L40 = GPUSpec(
    name="L40",
    sm_count=142,
    tensor_cores=568,
    cuda_cores=18176,
    clock_ghz=2.49,
    mem_bandwidth_gbps=864.0,
    fp32_tflops=90.5,
    tensor_tflops=181.0,
    l2_bytes=96 * 1024 * 1024,
    launch_overhead_us=4.0,
    mem_efficiency=0.82,
    compute_efficiency=0.60,
    l2_ratio=2.5,
)

A100 = GPUSpec(
    name="A100",
    sm_count=108,
    tensor_cores=432,
    cuda_cores=6912,
    clock_ghz=1.41,
    mem_bandwidth_gbps=1555.0,
    fp32_tflops=19.5,
    tensor_tflops=312.0,
    l2_bytes=40 * 1024 * 1024,
    launch_overhead_us=4.5,
    mem_efficiency=0.80,
    compute_efficiency=0.55,
    l2_ratio=3.0,
)

_GPUS = {g.name: g for g in (V100, L40, A100)}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by name (case-insensitive)."""
    try:
        return _GPUS[name.upper()]
    except KeyError:
        raise KeyError(f"unknown GPU {name!r}; known: {sorted(_GPUS)}") from None


def known_gpus() -> list[str]:
    """Names of all registered GPU specs."""
    return sorted(_GPUS)

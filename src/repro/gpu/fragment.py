"""WMMA fragment model with the register<->element mapping of §3.

A 16x16 fragment is held collectively by a warp of 32 lanes; each lane
owns 8 registers ``x[0..7]`` (Fig. 2).  The fragment splits into four 8x8
*portions*; within a portion each lane owns two consecutive elements
(Fig. 1).

The mapping implemented here — and rediscovered by probing in
:mod:`repro.core.reverse_engineering` — is:

Accumulator / A-operand layout (row-major element pairs)
    Registers ``x[2p], x[2p+1]`` address portion ``p`` in the order
    top-left (0), top-right (1), bottom-left (2), bottom-right (3).
    Within a portion, lane ``l`` owns row ``l // 4`` and columns
    ``2 * (l % 4)`` and ``2 * (l % 4) + 1``.

B-operand layout (column-major element pairs)
    The B operand of ``D = A @ B + C`` is consumed column-major (§4.3:
    "the vector is arranged vertically"), so lane ``l`` owns column
    ``l // 4`` and rows ``2 * (l % 4)``, ``2 * (l % 4) + 1``; the portion
    order is top-left (0), bottom-left (1), top-right (2), bottom-right
    (3).  Both layouts give the diagonal portions the same registers —
    ``x[0..1]`` top-left and ``x[6..7]`` bottom-right — which is what
    Algorithm 3 relies on.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.constants import (
    ELEMENTS_PER_LANE,
    FRAGMENT_DIM,
    PORTION_DIM,
    REGISTERS_PER_LANE,
    WARP_SIZE,
)
from repro.errors import LayoutError
from repro.gpu import instrument

__all__ = [
    "FragmentKind",
    "Fragment",
    "lane_register_element",
    "element_owner",
    "portion_of_register",
    "registers_of_portion",
    "index_maps",
    "verify_lane_mapping",
    "PORTION_OFFSETS",
]


class FragmentKind(enum.Enum):
    """Which MMA operand a fragment feeds."""

    MATRIX_A = "matrix_a"
    MATRIX_B = "matrix_b"
    ACCUMULATOR = "accumulator"

    @property
    def row_major_pairs(self) -> bool:
        """True when a lane's two elements are row neighbours."""
        return self is not FragmentKind.MATRIX_B


#: (row offset, col offset) of each portion index, per kind.
PORTION_OFFSETS: dict[FragmentKind, tuple[tuple[int, int], ...]] = {
    FragmentKind.MATRIX_A: ((0, 0), (0, 8), (8, 0), (8, 8)),
    FragmentKind.ACCUMULATOR: ((0, 0), (0, 8), (8, 0), (8, 8)),
    FragmentKind.MATRIX_B: ((0, 0), (8, 0), (0, 8), (8, 8)),
}


def portion_of_register(register: int) -> int:
    """Portion index (0..3) a register addresses."""
    if not 0 <= register < REGISTERS_PER_LANE:
        raise LayoutError(f"register index {register} out of range [0, 8)")
    return register // ELEMENTS_PER_LANE


def registers_of_portion(portion: int) -> tuple[int, int]:
    """The two register indices addressing a portion (e.g. 3 -> (6, 7))."""
    if not 0 <= portion < 4:
        raise LayoutError(f"portion index {portion} out of range [0, 4)")
    return 2 * portion, 2 * portion + 1


def lane_register_element(kind: FragmentKind, lane: int, register: int) -> tuple[int, int]:
    """Map (lane, register) to the fragment element (row, col) it holds."""
    if not 0 <= lane < WARP_SIZE:
        raise LayoutError(f"lane {lane} out of range [0, 32)")
    p = portion_of_register(register)
    dr, dc = PORTION_OFFSETS[kind][p]
    major = lane // 4
    minor = 2 * (lane % 4) + register % ELEMENTS_PER_LANE
    if kind.row_major_pairs:
        return dr + major, dc + minor
    return dr + minor, dc + major


def element_owner(kind: FragmentKind, row: int, col: int) -> tuple[int, int]:
    """Inverse mapping: which (lane, register) holds element (row, col)."""
    if not (0 <= row < FRAGMENT_DIM and 0 <= col < FRAGMENT_DIM):
        raise LayoutError(f"element ({row}, {col}) outside the 16x16 fragment")
    offsets = PORTION_OFFSETS[kind]
    p = next(
        i
        for i, (dr, dc) in enumerate(offsets)
        if dr <= row < dr + PORTION_DIM and dc <= col < dc + PORTION_DIM
    )
    dr, dc = offsets[p]
    r, c = row - dr, col - dc
    if kind.row_major_pairs:
        major, minor = r, c
    else:
        major, minor = c, r
    lane = major * 4 + minor // 2
    register = 2 * p + minor % 2
    return lane, register


def _index_maps(kind: FragmentKind) -> tuple[np.ndarray, np.ndarray]:
    """Precomputed (rows, cols) arrays of shape (32, 8) for a kind."""
    rows = np.empty((WARP_SIZE, REGISTERS_PER_LANE), dtype=np.int64)
    cols = np.empty_like(rows)
    # lint: ignore[per-lane-loop] -- this loop *builds* the lanewise table
    for lane in range(WARP_SIZE):
        for reg in range(REGISTERS_PER_LANE):
            rows[lane, reg], cols[lane, reg] = lane_register_element(kind, lane, reg)
    return rows, cols


_MAPS: dict[FragmentKind, tuple[np.ndarray, np.ndarray]] = {k: _index_maps(k) for k in FragmentKind}


def index_maps(kind: FragmentKind) -> tuple[np.ndarray, np.ndarray]:
    """The active (rows, cols) lane/register -> element tables, shape (32, 8).

    ``rows[lane, reg], cols[lane, reg]`` is the fragment element that
    lane's register addresses.  Returns read-only views of the live
    tables — the ones :class:`Fragment` itself indexes through — so
    vectorized callers (e.g. the SpMM panel loader) stay consistent with
    the fragment layout even under an injected perturbation, where the
    sanitizer's ownership check flags the mismatch.
    """
    rows, cols = _MAPS[kind]
    r, c = rows.view(), cols.view()
    r.flags.writeable = False
    c.flags.writeable = False
    return r, c


def _touch(fragment: "Fragment", registers: tuple[int, ...] | None) -> None:
    """Report a layout-table consultation to the installed tracer."""
    tracer = instrument.get_tracer()
    if tracer is not None:
        tracer.on_fragment_access(fragment, registers)


def verify_lane_mapping() -> None:
    """Check the active layout tables against the §3 functional mapping.

    ``Fragment`` reads and writes through the precomputed ``_MAPS``
    tables; a perturbed table (an injected fault, or a future layout for
    a new architecture wired up wrong) silently scrambles every MMA
    result.  This re-derives each table entry from
    :func:`lane_register_element` and checks the lane/register ->
    element mapping is still the documented bijection, raising
    :class:`~repro.errors.LayoutError` with the offending lane/register
    coordinate.
    """
    for kind in FragmentKind:
        rows, cols = _MAPS[kind]
        seen = np.zeros((FRAGMENT_DIM, FRAGMENT_DIM), dtype=np.int64)
        # lint: ignore[per-lane-loop] -- re-derives every slot from the
        # functional mapping on purpose; the table IS the thing under test
        for lane in range(WARP_SIZE):
            for reg in range(REGISTERS_PER_LANE):
                expected = lane_register_element(kind, lane, reg)
                actual = (int(rows[lane, reg]), int(cols[lane, reg]))
                if actual != expected:
                    raise LayoutError(
                        f"{kind.value} layout table maps lane {lane} register {reg} "
                        f"to element {actual}, expected {expected}"
                    )
                seen[actual] += 1
        if not (seen == 1).all():
            r, c = (int(v) for v in np.argwhere(seen != 1)[0])
            raise LayoutError(
                f"{kind.value} layout table is not a bijection: element "
                f"({r}, {c}) owned by {int(seen[r, c])} lane/register slots"
            )


class Fragment:
    """One warp's view of a 16x16 tensor-core buffer.

    State is the per-lane register file, shape ``(32, 8)`` — matching how
    the hardware actually stores fragments.  The 16x16 matrix view is
    derived through the layout mapping, never stored.
    """

    def __init__(self, kind: FragmentKind, dtype: np.dtype | type = np.float32):
        self.kind = kind
        self.dtype = np.dtype(dtype)
        self.registers = np.zeros((WARP_SIZE, REGISTERS_PER_LANE), dtype=self.dtype)

    # -- register-level access (the path Spaden uses) ------------------------
    def write_register(self, lane: int, register: int, value: float) -> None:
        """``fragment.x[register] = value`` executed by one lane."""
        lane_register_element(self.kind, lane, register)  # bounds check
        _touch(self, (register,))
        self.registers[lane, register] = value

    def read_register(self, lane: int, register: int) -> float:
        lane_register_element(self.kind, lane, register)
        _touch(self, (register,))
        return self.registers[lane, register].item()

    def warp_write_register(self, register: int, values: np.ndarray) -> None:
        """All 32 lanes write the same register index in lockstep."""
        v = np.asarray(values)
        if v.shape != (WARP_SIZE,):
            raise LayoutError("warp_write_register expects one value per lane")
        portion_of_register(register)
        _touch(self, (register,))
        self.registers[:, register] = v.astype(self.dtype)

    def warp_read_register(self, register: int) -> np.ndarray:
        portion_of_register(register)
        _touch(self, (register,))
        return self.registers[:, register].copy()

    def fill(self, value: float) -> None:
        """``wmma::fill_fragment`` — set every register of every lane."""
        self.registers[:] = self.dtype.type(value)

    # -- matrix view --------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Materialize the 16x16 element view from the register file."""
        _touch(self, None)
        rows, cols = _MAPS[self.kind]
        out = np.zeros((FRAGMENT_DIM, FRAGMENT_DIM), dtype=self.dtype)
        out[rows, cols] = self.registers
        return out

    def load_matrix(self, matrix: np.ndarray) -> None:
        """Fill all registers from a 16x16 element view."""
        m = np.asarray(matrix)
        if m.shape != (FRAGMENT_DIM, FRAGMENT_DIM):
            raise LayoutError(f"expected 16x16 matrix, got shape {m.shape}")
        _touch(self, None)
        rows, cols = _MAPS[self.kind]
        self.registers[:, :] = m[rows, cols].astype(self.dtype)

    def portion(self, portion: int) -> np.ndarray:
        """Extract one 8x8 portion as a dense array."""
        dr, dc = PORTION_OFFSETS[self.kind][portion]
        return self.to_matrix()[dr : dr + PORTION_DIM, dc : dc + PORTION_DIM]

    def set_portion(self, portion: int, block: np.ndarray) -> None:
        """Write one 8x8 portion through the register mapping."""
        b = np.asarray(block)
        if b.shape != (PORTION_DIM, PORTION_DIM):
            raise LayoutError(f"expected 8x8 block, got {b.shape}")
        r0, r1 = registers_of_portion(portion)
        _touch(self, (r0, r1))
        rows, cols = _MAPS[self.kind]
        dr, dc = PORTION_OFFSETS[self.kind][portion]
        for reg in (r0, r1):
            self.registers[:, reg] = b[rows[:, reg] - dr, cols[:, reg] - dc].astype(self.dtype)

    def copy(self) -> "Fragment":
        out = Fragment(self.kind, self.dtype)
        out.registers[:] = self.registers
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Fragment {self.kind.value} dtype={self.dtype}>"

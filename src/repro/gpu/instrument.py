"""Opt-in instrumentation seam for the lane-accurate simulator.

The gpu layer stays dependency-free: :mod:`repro.gpu.memory`,
:mod:`repro.gpu.warp` and :mod:`repro.gpu.fragment` call the hooks of
whatever :class:`Tracer` is installed here (none by default, so the
uninstrumented path costs one ``None`` check per simulated instruction).
The SIMT sanitizer in :mod:`repro.analysis.sanitizer` is the canonical
tracer; tests may install lightweight ones of their own.
"""

from __future__ import annotations

__all__ = ["Tracer", "get_tracer", "set_tracer", "tracing"]


class Tracer:
    """No-op base class defining the instrumentation hook points.

    Subclasses override what they need; every hook is called from the
    simulator's hot path, so implementations should stay vectorized.
    """

    def on_warp_begin(self, warp) -> None:
        """A new :class:`~repro.gpu.warp.Warp` started executing."""

    def on_global_access(
        self, memory, name, kind, indices, mask, itemsize, sectors, ideal_sectors
    ) -> None:
        """One warp memory instruction completed its address validation.

        ``kind`` is ``"load"`` / ``"store"`` / ``"atomic"``; ``indices``
        and ``mask`` are the full-width per-lane arrays; ``sectors`` is
        the 32-byte-sector transaction count the memory model charged and
        ``ideal_sectors`` the minimum a perfectly coalesced access of the
        same active footprint would need.
        """

    def on_fragment_access(self, fragment, registers) -> None:
        """A fragment's layout tables were consulted for ``registers``
        (an iterable of register indices, or ``None`` for all eight)."""


_TRACER: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The currently installed tracer, or ``None``."""
    return _TRACER


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` (or remove with ``None``); returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


class tracing:
    """Context manager installing a tracer for the duration of a block."""

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc) -> None:
        set_tracer(self._previous)

"""Lockstep 32-lane warp model.

Kernels in this library are written *warp-synchronously*: every operation
takes one value per lane (a length-32 array) and an optional active-lane
mask, exactly mirroring predicated SIMT execution.  A :class:`Warp` binds
the lane id vector to a :class:`~repro.gpu.memory.GlobalMemory` instance
and an :class:`~repro.gpu.counters.ExecutionStats` recorder.
"""

from __future__ import annotations

import numpy as np

from repro.constants import WARP_SIZE
from repro.errors import LaneIndexError, SimulationError
from repro.gpu import instrument
from repro.gpu.counters import ExecutionStats
from repro.gpu.memory import GlobalMemory

__all__ = ["Warp"]


class Warp:
    """One warp of 32 lanes with lockstep semantics."""

    def __init__(self, memory: GlobalMemory, warp_id: int = 0):
        self.memory = memory
        self.warp_id = int(warp_id)
        #: Lane ids 0..31 (``lid`` in the paper's pseudocode).
        self.lanes = np.arange(WARP_SIZE, dtype=np.int64)
        self.stats = memory.stats
        self.stats.warps_launched += 1
        tracer = instrument.get_tracer()
        if tracer is not None:
            tracer.on_warp_begin(self)

    # -- memory ----------------------------------------------------------------
    def load(self, name: str, indices: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Per-lane gather from a named global array (coalescing-counted)."""
        return self.memory.warp_load(name, indices, mask)

    def store(self, name: str, indices: np.ndarray, values: np.ndarray, mask: np.ndarray | None = None) -> None:
        self.memory.warp_store(name, indices, values, mask)

    def atomic_add(self, name: str, indices: np.ndarray, values: np.ndarray, mask: np.ndarray | None = None) -> None:
        self.memory.warp_atomic_add(name, indices, values, mask)

    # -- intra-warp primitives ---------------------------------------------------
    def shuffle(self, values: np.ndarray, source_lane: np.ndarray | int) -> np.ndarray:
        """``__shfl_sync``: each lane reads ``values`` from another lane.

        ``source_lane`` entries must lie in ``[0, 32)`` — an out-of-range
        request raises :class:`~repro.errors.LaneIndexError` identifying
        the requesting lane, instead of the silent modular wraparound
        numpy indexing (and, with ``width=32``, real hardware) would do.
        """
        v = self._lanewise(values)
        src = np.broadcast_to(np.asarray(source_lane, dtype=np.int64), (WARP_SIZE,))
        if src.min() < 0 or src.max() >= WARP_SIZE:
            bad = int(np.argmax((src < 0) | (src >= WARP_SIZE)))
            raise LaneIndexError(
                f"shuffle source lane {int(src[bad])} out of range [0, {WARP_SIZE}) "
                f"(requested by lane {bad} of warp {self.warp_id})",
                lane=bad, value=int(src[bad]), warp_id=self.warp_id,
            )
        self.stats.warp_instructions += 1
        return v[src]

    def shuffle_down(self, values: np.ndarray, delta: int) -> np.ndarray:
        """``__shfl_down_sync`` with identity fill past the warp edge.

        ``delta`` must lie in ``[0, 32)``: a negative delta would index
        backwards through numpy wraparound (lane 0 silently reading lane
        31) and a delta past the warp width is meaningless, so both raise
        :class:`~repro.errors.LaneIndexError`.
        """
        delta = int(delta)
        if not 0 <= delta < WARP_SIZE:
            raise LaneIndexError(
                f"shuffle_down delta {delta} out of range [0, {WARP_SIZE}) "
                f"(warp {self.warp_id})",
                value=delta, warp_id=self.warp_id,
            )
        v = self._lanewise(values)
        src = np.minimum(self.lanes + delta, WARP_SIZE - 1)
        self.stats.warp_instructions += 1
        return v[src]

    def ballot(self, predicate: np.ndarray) -> int:
        """``__ballot_sync``: bitmask of lanes whose predicate holds."""
        p = self._lanewise(predicate).astype(bool)
        self.stats.warp_instructions += 1
        return int(np.sum((1 << self.lanes)[p]))

    def reduce_sum(self, values: np.ndarray) -> float:
        """Butterfly reduction over the warp (log2(32) = 5 shuffle rounds)."""
        v = self._lanewise(values).astype(np.float64).copy()
        for delta in (16, 8, 4, 2, 1):
            v = v + self.shuffle_down(v, delta)
        return float(v[0])

    # -- arithmetic accounting -------------------------------------------------------
    def count_flops(self, per_lane: int, mask: np.ndarray | None = None) -> None:
        """Record floating-point work done on CUDA cores by this warp."""
        active = WARP_SIZE if mask is None else int(np.count_nonzero(mask))
        self.stats.cuda_flops += per_lane * active
        self.stats.warp_instructions += per_lane

    def count_int_ops(self, per_lane: int, mask: np.ndarray | None = None) -> None:
        """Record integer/bitwise work (bitmap decode, addressing)."""
        active = WARP_SIZE if mask is None else int(np.count_nonzero(mask))
        self.stats.cuda_int_ops += per_lane * active
        self.stats.warp_instructions += per_lane

    # -- helpers -----------------------------------------------------------------------
    @staticmethod
    def _lanewise(values: np.ndarray) -> np.ndarray:
        v = np.asarray(values)
        if v.shape != (WARP_SIZE,):
            raise SimulationError(f"expected one value per lane (shape (32,)), got {v.shape}")
        return v

"""The conventional WMMA API (``wmma::load/store/mma/fill``).

This is the *documented* path the paper contrasts against (§3): data is
first staged into shared memory, aligned to the fragment layout, and only
then loaded into registers.  The staging traffic is charged to
``ExecutionStats.shared_bytes`` so benchmarks can quantify the
indirection Spaden's register-level writes eliminate.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FRAGMENT_DIM
from repro.errors import SimulationError
from repro.gpu.counters import ExecutionStats
from repro.gpu.fragment import Fragment, FragmentKind
from repro.gpu.memory import GlobalMemory
from repro.gpu.mma import MMAUnit, Precision

__all__ = ["fill_fragment", "load_matrix_sync", "store_matrix_sync", "mma_sync"]


def fill_fragment(fragment: Fragment, value: float, stats: ExecutionStats | None = None) -> None:
    """``wmma::fill_fragment`` — one instruction, no memory traffic."""
    fragment.fill(value)
    if stats is not None:
        stats.warp_instructions += 1


def load_matrix_sync(
    fragment: Fragment,
    memory: GlobalMemory,
    name: str,
    offset: int,
    ldm: int,
) -> None:
    """``wmma::load_matrix_sync`` via the conventional shared-memory path.

    Reads a 16x16 tile starting at flat ``offset`` with leading dimension
    ``ldm`` from the named global array.  All 256 elements are moved —
    including zeros — first into shared memory, then into registers.
    """
    arr = memory.array(name)
    rows = np.arange(FRAGMENT_DIM, dtype=np.int64)
    tile_idx = offset + rows[:, None] * ldm + rows[None, :]
    if tile_idx.min() < 0 or tile_idx.max() >= arr.size:
        raise SimulationError(f"wmma load tile out of bounds of {name!r}")
    # global -> shared: 8 coalesced row-pair loads by the warp
    flat = tile_idx.reshape(8, 32)
    tile = np.empty((8, 32), dtype=arr.dtype)
    for chunk in range(8):
        tile[chunk] = memory.warp_load(name, flat[chunk])
    stats = memory.stats
    stats.shared_bytes += int(tile.nbytes)  # shared-memory staging write
    stats.shared_bytes += int(tile.nbytes)  # ... and the read back out
    fragment.load_matrix(tile.reshape(FRAGMENT_DIM, FRAGMENT_DIM).astype(np.float32))
    stats.warp_instructions += 1


def store_matrix_sync(
    memory: GlobalMemory,
    name: str,
    offset: int,
    ldm: int,
    fragment: Fragment,
) -> None:
    """``wmma::store_matrix_sync`` — write all 256 elements back."""
    arr = memory.array(name)
    rows = np.arange(FRAGMENT_DIM, dtype=np.int64)
    tile_idx = offset + rows[:, None] * ldm + rows[None, :]
    if tile_idx.min() < 0 or tile_idx.max() >= arr.size:
        raise SimulationError(f"wmma store tile out of bounds of {name!r}")
    values = fragment.to_matrix().reshape(8, 32)
    flat = tile_idx.reshape(8, 32)
    stats = memory.stats
    stats.shared_bytes += 2 * values.nbytes
    for chunk in range(8):
        memory.warp_store(name, flat[chunk], values[chunk])
    stats.warp_instructions += 1


def mma_sync(
    a: Fragment,
    b: Fragment,
    c: Fragment,
    precision: Precision = Precision.FP16,
    stats: ExecutionStats | None = None,
) -> Fragment:
    """``wmma::mma_sync`` — free-function wrapper over :class:`MMAUnit`."""
    unit = MMAUnit(precision, stats if stats is not None else ExecutionStats())
    return unit.mma(a, b, c)

"""Lane-accurate SpMM pairing kernel (the §7 extension on the simulator).

Extends Algorithm 3 from vector to dense-matrix right-hand side: fragment
A is decoded exactly as in SpMV (two diagonal bitBSR blocks), but
fragment B's diagonal portions hold genuine 8x8 *panels* of the dense
operand X instead of a broadcast vector, and the full 8x8 result tiles of
the accumulator are stored — 128 useful results per MMA instead of 16.

The module mirrors :mod:`repro.core.spmv`'s structure: a simulated path
(ground truth + exact counters) and the vectorized path in
:mod:`repro.core.spmm`.
"""

from __future__ import annotations

import numpy as np

from repro.constants import BLOCK_DIM, WARP_SIZE
from repro.core.decode import decode_matrix_lane_values
from repro.core.pairing import BOTTOM_PORTION, TOP_PORTION, _broadcast_load
from repro.errors import KernelError
from repro.formats.bitbsr import BitBSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.gpu.fragment import (
    PORTION_OFFSETS,
    Fragment,
    FragmentKind,
    index_maps,
    registers_of_portion,
)
from repro.gpu.memory import GlobalMemory
from repro.gpu.mma import MMAUnit, Precision
from repro.gpu.warp import Warp

__all__ = ["spaden_spmm_simulated"]


def _load_b_panel(
    warp: Warp,
    b_frag: Fragment,
    portion: int,
    segment: int,
    panel: int,
    k: int,
) -> None:
    """Load one 8x8 panel of X into a B-fragment portion, per lane.

    In the column-major B layout, lane ``l`` owns rows ``2(l%4)`` and
    ``2(l%4)+1`` of column ``l//4`` of the portion; the global element is
    ``X[segment*8 + row, panel*8 + col]`` stored row-major with leading
    dimension ``k``.  Panel columns beyond ``k`` are zero-filled.
    """
    reg1, reg2 = registers_of_portion(portion)
    map_rows, map_cols = index_maps(FragmentKind.MATRIX_B)
    dr, dc = PORTION_OFFSETS[FragmentKind.MATRIX_B][portion]
    for reg in (reg1, reg2):
        rows = map_rows[:, reg] - dr
        cols = map_cols[:, reg] - dc
        global_cols = panel * BLOCK_DIM + cols
        valid = global_cols < k
        idx = (segment * BLOCK_DIM + rows) * k + global_cols
        values = warp.load("B_matrix", np.where(valid, idx, 0), mask=valid)
        b_frag.warp_write_register(reg, values.astype(np.float32))


def _store_c_portion(
    warp: Warp,
    acc: Fragment,
    portion: int,
    block_row: int,
    panel: int,
    k: int,
    nrows: int,
) -> None:
    """Store one accumulator portion's 8x8 tile into Y (row-major, ld k)."""
    dr, dc = PORTION_OFFSETS[FragmentKind.ACCUMULATOR][portion]
    reg1, reg2 = registers_of_portion(portion)
    map_rows, map_cols = index_maps(FragmentKind.ACCUMULATOR)
    for reg in (reg1, reg2):
        rows = map_rows[:, reg] - dr
        cols = map_cols[:, reg] - dc
        global_rows = block_row * BLOCK_DIM + rows
        global_cols = panel * BLOCK_DIM + cols
        valid = (global_cols < k) & (global_rows < nrows)
        idx = global_rows * k + global_cols
        warp.store("Y_matrix", np.where(valid, idx, 0), acc.warp_read_register(reg), mask=valid)


def spaden_spmm_simulated(
    bitbsr: BitBSRMatrix,
    dense: np.ndarray,
    precision: Precision | None = None,
) -> tuple[np.ndarray, ExecutionStats]:
    """Run the SpMM pairing kernel lane-by-lane; returns (Y, stats).

    One warp per (block-row pair, 8-column panel).  Verification-scale
    inputs only — every register write happens individually.
    """
    X = np.asarray(dense)
    if X.ndim != 2 or X.shape[0] != bitbsr.ncols:
        raise KernelError(f"dense operand has shape {X.shape}, expected ({bitbsr.ncols}, k)")
    k = int(X.shape[1])
    if precision is None:
        precision = Precision.FP16 if bitbsr.value_dtype == np.float16 else Precision.TF32

    memory = GlobalMemory()
    memory.register("block_row_pointers", bitbsr.block_row_pointers.astype(np.int32))
    memory.register("block_cols", bitbsr.block_cols)
    memory.register("bitmaps", bitbsr.bitmaps)
    memory.register("block_offsets", bitbsr.block_offsets.astype(np.int32))
    memory.register("A_values", bitbsr.values)
    xpad = np.zeros((bitbsr.block_cols_count * BLOCK_DIM, k), dtype=bitbsr.value_dtype)
    xpad[: X.shape[0]] = X.astype(bitbsr.value_dtype)
    memory.register("B_matrix", xpad.reshape(-1))
    memory.register("Y_matrix", np.zeros(bitbsr.nrows * k, dtype=np.float32))

    nbrows = bitbsr.block_rows_count
    panels = -(-k // BLOCK_DIM)
    zero = np.zeros(WARP_SIZE, dtype=np.float32)
    for top in range(0, nbrows, 2):
        bottom = top + 1 if top + 1 < nbrows else None
        for panel in range(panels):
            warp = Warp(memory)
            unit = MMAUnit(precision, stats=memory.stats)
            a_frag = Fragment(FragmentKind.MATRIX_A, np.float32)
            b_frag = Fragment(FragmentKind.MATRIX_B, np.float32)
            acc = Fragment(FragmentKind.ACCUMULATOR, np.float32)

            start_top = _broadcast_load(warp, "block_row_pointers", top)
            end_top = _broadcast_load(warp, "block_row_pointers", top + 1)
            if bottom is not None:
                start_bot = _broadcast_load(warp, "block_row_pointers", bottom)
                end_bot = _broadcast_load(warp, "block_row_pointers", bottom + 1)
            else:
                start_bot = end_bot = 0

            for i in range(max(end_top - start_top, end_bot - start_bot)):
                for portion, start, end in (
                    (TOP_PORTION, start_top, end_top),
                    (BOTTOM_PORTION, start_bot, end_bot),
                ):
                    if portion == BOTTOM_PORTION and bottom is None:
                        for reg in registers_of_portion(portion):
                            a_frag.warp_write_register(reg, zero)
                            b_frag.warp_write_register(reg, zero)
                        continue
                    if start + i < end:
                        block = start + i
                        seg = _broadcast_load(warp, "block_cols", block)
                        a1, a2 = decode_matrix_lane_values(warp, bitbsr, block)
                        r1, r2 = registers_of_portion(portion)
                        a_frag.warp_write_register(r1, a1)
                        a_frag.warp_write_register(r2, a2)
                        _load_b_panel(warp, b_frag, portion, seg, panel, k)
                    else:
                        for reg in registers_of_portion(portion):
                            a_frag.warp_write_register(reg, zero)
                            b_frag.warp_write_register(reg, zero)
                acc = unit.mma(a_frag, b_frag, acc)

            _store_c_portion(warp, acc, TOP_PORTION, top, panel, k, bitbsr.nrows)
            if bottom is not None:
                _store_c_portion(warp, acc, BOTTOM_PORTION, bottom, panel, k, bitbsr.nrows)

    Y = memory.array("Y_matrix").reshape(bitbsr.nrows, k).copy()
    return Y, memory.stats

"""Algorithm 3 — tensor-core computing over paired block rows.

One warp owns two consecutive block rows of the bitBSR matrix.  Blocks of
the top row are decoded into the *top-left* portion of fragment A
(registers ``x[0], x[1]``), blocks of the bottom row into the
*bottom-right* portion (``x[6], x[7]``); the matching x segments are
broadcast into the same two diagonal portions of fragment B.  Each MMA
therefore advances both block rows by one block — 16 result rows per
tensor-core op, "a double of DASP's throughput" (§4.3).

The two block rows generally have different lengths; the shorter one's
portion is cleared to zero for the excess iterations (zeros contribute
nothing to the accumulator).
"""

from __future__ import annotations

import numpy as np

from repro.constants import WARP_SIZE
from repro.errors import KernelError
from repro.formats.bitbsr import BitBSRMatrix
from repro.gpu.fragment import Fragment, FragmentKind, registers_of_portion
from repro.gpu.mma import MMAUnit
from repro.gpu.warp import Warp
from repro.core.decode import decode_matrix_lane_values, decode_vector_lane_values

__all__ = ["pair_block_rows", "TOP_PORTION", "BOTTOM_PORTION"]

#: Diagonal portions used by the pairing kernel (Fig. 5).
TOP_PORTION: int = 0
BOTTOM_PORTION: int = 3


def _broadcast_load(warp: Warp, name: str, index: int) -> int:
    """All lanes read the same scalar (pointer / block column)."""
    values = warp.load(name, np.full(WARP_SIZE, index, dtype=np.int64))
    return int(values[0])


def pair_block_rows(
    warp: Warp,
    mma_unit: MMAUnit,
    bitbsr: BitBSRMatrix,
    block_row_top: int,
    block_row_bottom: int | None,
) -> Fragment:
    """Run Algorithm 3 for one warp; returns the accumulator fragment.

    ``block_row_bottom`` may be ``None`` when the matrix has an odd number
    of block rows and the last warp only fills the top-left portion.
    Expects the warp's memory to expose the bitBSR arrays under the names
    ``block_row_pointers``, ``block_cols``, ``bitmaps``, ``block_offsets``,
    ``A_values`` and the input vector under ``B_values``.
    """
    nbrows = bitbsr.block_rows_count
    if not 0 <= block_row_top < nbrows:
        raise KernelError(f"block row {block_row_top} out of range")
    if block_row_bottom is not None and not 0 <= block_row_bottom < nbrows:
        raise KernelError(f"block row {block_row_bottom} out of range")

    a_frag = Fragment(FragmentKind.MATRIX_A, np.float32)
    b_frag = Fragment(FragmentKind.MATRIX_B, np.float32)
    acc = Fragment(FragmentKind.ACCUMULATOR, np.float32)
    acc.fill(0.0)

    start_top = _broadcast_load(warp, "block_row_pointers", block_row_top)
    end_top = _broadcast_load(warp, "block_row_pointers", block_row_top + 1)
    if block_row_bottom is not None:
        start_bot = _broadcast_load(warp, "block_row_pointers", block_row_bottom)
        end_bot = _broadcast_load(warp, "block_row_pointers", block_row_bottom + 1)
    else:
        start_bot = end_bot = 0

    steps = max(end_top - start_top, end_bot - start_bot)
    zero = np.zeros(WARP_SIZE, dtype=np.float32)
    for i in range(steps):
        _fill_portion(
            warp, a_frag, b_frag, bitbsr, TOP_PORTION,
            start_top + i if start_top + i < end_top else None,
        )
        if block_row_bottom is not None:
            _fill_portion(
                warp, a_frag, b_frag, bitbsr, BOTTOM_PORTION,
                start_bot + i if start_bot + i < end_bot else None,
            )
        else:
            for reg in registers_of_portion(BOTTOM_PORTION):
                a_frag.warp_write_register(reg, zero)
                b_frag.warp_write_register(reg, zero)
        acc = mma_unit.mma(a_frag, b_frag, acc)
    return acc


def _fill_portion(
    warp: Warp,
    a_frag: Fragment,
    b_frag: Fragment,
    bitbsr: BitBSRMatrix,
    portion: int,
    block_index: int | None,
) -> None:
    """Decode one block (or clear the portion when the row is exhausted)."""
    reg1, reg2 = registers_of_portion(portion)
    if block_index is None:
        zero = np.zeros(WARP_SIZE, dtype=np.float32)
        a_frag.warp_write_register(reg1, zero)
        a_frag.warp_write_register(reg2, zero)
        b_frag.warp_write_register(reg1, zero)
        b_frag.warp_write_register(reg2, zero)
        return
    # A_idx / B_idx of Algorithm 3 lines 2-3
    b_idx = _broadcast_load(warp, "block_cols", block_index)
    a1, a2 = decode_matrix_lane_values(warp, bitbsr, block_index)
    v1, v2 = decode_vector_lane_values(warp, b_idx)
    # Algorithm 3 lines 6-7: direct register writes, no shared memory
    a_frag.warp_write_register(reg1, a1)
    a_frag.warp_write_register(reg2, a2)
    b_frag.warp_write_register(reg1, v1)
    b_frag.warp_write_register(reg2, v2)

"""Reproduction of the paper's §3 reverse-engineering experiment.

The paper discovers the undocumented fragment layout by assigning
``fragment.x[i] = i`` in every thread and observing where each value lands
in the stored 16x16 matrix.  This module runs the same probe against the
simulated hardware (:mod:`repro.gpu.fragment`) and *derives* the
(lane, register) -> (row, col) mapping from the observations alone — it
never reads the simulator's own tables, so it would detect any layout the
simulator happened to implement, exactly as the paper's probe would on
real silicon.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    FRAGMENT_DIM,
    PORTION_DIM,
    REGISTERS_PER_LANE,
    WARP_SIZE,
)
from repro.errors import LayoutError
from repro.gpu.fragment import Fragment, FragmentKind

__all__ = ["DiscoveredLayout", "probe_fragment_layout", "valid_register_range"]


@dataclass(frozen=True)
class DiscoveredLayout:
    """Result of probing one fragment kind.

    ``owner_lane[r, c]`` / ``owner_register[r, c]`` give the thread and
    register holding fragment element (r, c); ``portion_registers[p]`` is
    the ordered pair of register indices that addresses portion ``p``
    (0 = top-left, 1 = top-right, 2 = bottom-left, 3 = bottom-right in
    row-major portion order).
    """

    kind: FragmentKind
    owner_lane: np.ndarray
    owner_register: np.ndarray
    portion_registers: tuple[tuple[int, int], ...]

    def element_of(self, lane: int, register: int) -> tuple[int, int]:
        """Invert the probe: where does (lane, register) land?"""
        hits = np.argwhere((self.owner_lane == lane) & (self.owner_register == register))
        if hits.shape[0] != 1:
            raise LayoutError(f"(lane {lane}, x[{register}]) maps to {hits.shape[0]} elements")
        return int(hits[0, 0]), int(hits[0, 1])


def valid_register_range(kind: FragmentKind = FragmentKind.ACCUMULATOR) -> int:
    """How many register indices are actually live per lane.

    The paper's first surprise: probing shows indices 0..7 only (Fig. 2),
    i.e. 32 lanes x 8 registers = 256 = all 16x16 elements.
    """
    return REGISTERS_PER_LANE


def probe_fragment_layout(kind: FragmentKind = FragmentKind.ACCUMULATOR) -> DiscoveredLayout:
    """Run the §3 probe: two passes of distinguishable writes.

    Pass 1 writes ``x[i] = i`` in every lane (the paper's experiment) and
    recovers which *register index* each element comes from.  Pass 2
    writes ``x[i] = lane`` and recovers which *lane* owns each element.
    Together they fully determine the layout.
    """
    # pass 1: register identity
    frag = Fragment(kind, np.float32)
    for reg in range(REGISTERS_PER_LANE):
        frag.warp_write_register(reg, np.full(WARP_SIZE, float(reg)))
    register_view = frag.to_matrix().astype(np.int64)

    # pass 2: lane identity
    frag = Fragment(kind, np.float32)
    for reg in range(REGISTERS_PER_LANE):
        frag.warp_write_register(reg, np.arange(WARP_SIZE, dtype=np.float32))
    lane_view = frag.to_matrix().astype(np.int64)

    # derive portion -> register-pair table from the observations
    portion_registers = []
    for pr in range(0, FRAGMENT_DIM, PORTION_DIM):
        for pc in range(0, FRAGMENT_DIM, PORTION_DIM):
            regs = np.unique(register_view[pr : pr + PORTION_DIM, pc : pc + PORTION_DIM])
            if regs.size != 2 or regs[1] != regs[0] + 1:
                raise LayoutError(
                    f"portion at ({pr},{pc}) is not addressed by a consecutive "
                    f"register pair (saw {regs.tolist()})"
                )
            portion_registers.append((int(regs[0]), int(regs[1])))

    _check_probe_consistency(lane_view, register_view)
    return DiscoveredLayout(
        kind=kind,
        owner_lane=lane_view,
        owner_register=register_view,
        portion_registers=tuple(portion_registers),
    )


def _check_probe_consistency(lane_view: np.ndarray, register_view: np.ndarray) -> None:
    """Every (lane, register) pair must own exactly one element."""
    keys = lane_view * REGISTERS_PER_LANE + register_view
    unique = np.unique(keys)
    if unique.size != FRAGMENT_DIM * FRAGMENT_DIM:
        raise LayoutError(
            f"probe found {unique.size} distinct (lane, register) pairs; "
            f"expected {FRAGMENT_DIM * FRAGMENT_DIM}"
        )
    if register_view.min() < 0 or register_view.max() >= REGISTERS_PER_LANE:
        raise LayoutError("probe observed register indices outside 0..7")

"""SDDMM on bitBSR — the second §7 extension.

Sampled Dense-Dense Matrix Multiplication:
``Z = S ⊙ (U @ V^T)`` where S is the sparsity *pattern* of a bitBSR
matrix and U, V are dense factor matrices.  On tensor cores, each 8x8
block tile of ``U_seg @ V_seg^T`` is computed densely and the bitmap
masks which of the 64 results are kept — the bitmap serves as the output
selector exactly as it serves as the input selector in SpMV.

Returns a bitBSR matrix with the same pattern and the sampled products
as values.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.formats.bitbsr import BitBSRMatrix
from repro.gpu.mma import Precision, to_tf32

__all__ = ["spaden_sddmm"]


def spaden_sddmm(
    pattern: BitBSRMatrix,
    u: np.ndarray,
    v: np.ndarray,
    precision: Precision | None = None,
) -> BitBSRMatrix:
    """Compute ``Z = pattern ⊙ (U @ V^T)`` on the bitBSR pattern.

    ``u`` has shape (nrows, k) and ``v`` (ncols, k).  The result reuses
    the pattern's block structure; only positions whose bit is set are
    computed and stored.
    """
    U = np.asarray(u)
    V = np.asarray(v)
    if U.ndim != 2 or U.shape[0] != pattern.nrows:
        raise KernelError(f"U has shape {U.shape}, expected ({pattern.nrows}, k)")
    if V.ndim != 2 or V.shape[0] != pattern.ncols or V.shape[1] != U.shape[1]:
        raise KernelError(f"V has shape {V.shape}, expected ({pattern.ncols}, {U.shape[1]})")
    if precision is None:
        precision = Precision.FP16 if pattern.value_dtype == np.float16 else Precision.TF32

    def rounded(a: np.ndarray) -> np.ndarray:
        a = a.astype(np.float32)
        if precision is Precision.FP16:
            return a.astype(np.float16).astype(np.float32)
        if precision is Precision.TF32:
            return to_tf32(a)
        return a

    rows, cols = pattern.entry_coordinates()
    Ur = rounded(U)
    Vr = rounded(V)
    # lint: ignore[fp64-upcast] -- operands are already rounded to the input
    # precision; fp64 here only makes the reduction order-insensitive
    products = np.einsum("ek,ek->e", Ur[rows].astype(np.float64), Vr[cols].astype(np.float64))
    return BitBSRMatrix(
        pattern.shape,
        pattern.block_row_pointers.copy(),
        pattern.block_cols.copy(),
        pattern.bitmaps.copy(),
        products.astype(pattern.value_dtype),
        value_dtype=pattern.value_dtype,
    )

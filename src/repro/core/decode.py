"""Algorithm 2 — bitBSR decoding executed by one warp.

Each warp processes one 8x8 block per fragment portion.  For the block,
lane ``lid`` owns in-block bit positions ``2 * lid`` and ``2 * lid + 1``
(64 elements / 32 lanes).  The bitmap is tested with bitwise shifts; only
the values whose bits are set are *loaded* from global memory — the zeros
are "computed instead of loaded" by leaving the register at 0, which is
the paper's key traffic saving.

The value of a set bit at position ``p`` lives at
``block_offsets[block] + popcount(bitmap & ((1 << p) - 1))`` — the rank
of the bit — matching the packed-in-bit-order layout the builder emits.
"""

from __future__ import annotations

import numpy as np

from repro.constants import BLOCK_DIM, WARP_SIZE
from repro.errors import KernelError
from repro.formats.bitbsr import BitBSRMatrix
from repro.gpu.warp import Warp
from repro.utils.bitops import popcount_below

__all__ = ["decode_matrix_lane_values", "decode_vector_lane_values"]

_U64 = np.uint64


def decode_matrix_lane_values(
    warp: Warp,
    bitbsr: BitBSRMatrix,
    block_index: int,
    values_name: str = "A_values",
) -> tuple[np.ndarray, np.ndarray]:
    """Decode one block: per-lane (A_val1, A_val2), float32.

    Follows Algorithm 2 lines 1-6: lane ``lid`` computes bit positions
    ``2*lid`` and ``2*lid + 1``, tests them against the block's bitmap and
    loads only the set positions from the packed value array.  The
    per-lane value index is the bit's rank plus the block's offset.
    """
    if not 0 <= block_index < bitbsr.nblocks:
        raise KernelError(f"block index {block_index} out of range")
    lid = warp.lanes
    # every lane reads the same bitmap word — a broadcast load (one sector)
    bmp_per_lane = warp.load("bitmaps", np.full(WARP_SIZE, block_index, dtype=np.int64))
    bmp = _U64(bmp_per_lane[0])
    # lid_offset = lid << 1;  bit1 = 1 << lid_offset;  bit2 = 2 << lid_offset
    pos1 = (lid.astype(_U64) << _U64(1))
    pos2 = pos1 + _U64(1)
    has1 = ((bmp >> pos1) & _U64(1)).astype(bool)
    has2 = ((bmp >> pos2) & _U64(1)).astype(bool)
    warp.count_int_ops(6)  # shifts, masks, compares of lines 1-6

    base_per_lane = warp.load("block_offsets", np.full(WARP_SIZE, block_index, dtype=np.int64))
    base = int(base_per_lane[0])
    rank1 = popcount_below(np.full(WARP_SIZE, bmp, dtype=_U64), pos1.astype(np.int64))
    rank2 = rank1 + has1  # bit2's rank includes bit1 when it is set
    warp.count_int_ops(2)  # the two rank computations

    v1 = warp.load(values_name, base + rank1.astype(np.int64), mask=has1)
    v2 = warp.load(values_name, base + rank2.astype(np.int64), mask=has2)
    return v1.astype(np.float32), v2.astype(np.float32)


def decode_vector_lane_values(
    warp: Warp,
    segment_index: int,
    vector_name: str = "B_values",
) -> tuple[np.ndarray, np.ndarray]:
    """Decode the x segment: per-lane (B_val1, B_val2).

    Algorithm 2 lines 7-10: the warp fetches the 8-element segment in a
    repetitive pattern — lane ``lid`` reads positions ``(lid & 3) << 1``
    and its successor, so each element is read by four lanes (the
    column-major broadcast of Fig. 5's Frag B).
    """
    lid = warp.lanes
    b_pos1 = (lid & 3) << 1
    b_pos2 = b_pos1 + 1
    warp.count_int_ops(2)
    base = segment_index * BLOCK_DIM
    v1 = warp.load(vector_name, base + b_pos1)
    v2 = warp.load(vector_name, base + b_pos2)
    return v1.astype(np.float32), v2.astype(np.float32)

"""CSR -> bitBSR conversion (the Fig. 4 pipeline) with cost accounting.

The build walks the CSR entries once, fully vectorized:

1. compute each entry's (block row, block column, in-block bit position),
2. sort entries by (block, bit position) so values pack in bit order,
3. OR per-entry bit weights into one 64-bit bitmap per block,
4. exclusive-scan per-block popcounts into value offsets,
5. emit the block-level CSR over non-empty blocks.

:class:`BuildReport` captures both the *measured* host wall time and the
*modeled* device conversion cost used by the Fig. 10a reproduction (the
paper measures GPU-side conversion; our model charges the same per-nnz
passes a GPU implementation needs — see
:mod:`repro.perf.preprocessing`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

__all__ = ["BuildReport", "build_bitbsr"]


@dataclass(frozen=True)
class BuildReport:
    """Outcome of one CSR -> bitBSR conversion."""

    matrix: BitBSRMatrix
    #: Rows/blocks of the source and result (Table 1 columns).
    nrow: int
    nnz: int
    block_nrow: int
    block_nnz: int
    #: Measured host wall time for the conversion, seconds.
    host_seconds: float

    @property
    def host_ns_per_nnz(self) -> float:
        """Measured host conversion cost, normalized like Fig. 10a."""
        return self.host_seconds * 1e9 / self.nnz if self.nnz else 0.0

    @property
    def mean_block_nnz(self) -> float:
        return self.nnz / self.block_nnz if self.block_nnz else 0.0

    def table1_row(self, name: str) -> dict[str, int | str]:
        """One row of the paper's Table 1."""
        return {
            "Matrix": name,
            "nrow": self.nrow,
            "nnz": self.nnz,
            "Bnrow": self.block_nrow,
            "Bnnz": self.block_nnz,
        }


def build_bitbsr(
    matrix: CSRMatrix | COOMatrix,
    value_dtype: np.dtype | type = np.float16,
) -> BuildReport:
    """Convert a CSR (or COO) matrix to bitBSR, reporting build costs.

    CSR inputs take the direct one-pass
    :meth:`~repro.formats.bitbsr.BitBSRMatrix.from_csr` route (bitwise
    identical to the COO round trip, minus its materialization cost —
    the Fig. 10a conversion tax every kernel ``prepare`` pays); other
    formats still go through canonical COO.
    """
    start = time.perf_counter()
    if isinstance(matrix, CSRMatrix):
        bit = BitBSRMatrix.from_csr(matrix, value_dtype=value_dtype)
    else:
        bit = BitBSRMatrix.from_coo(matrix.tocoo(), value_dtype=value_dtype)
    elapsed = time.perf_counter() - start
    return BuildReport(
        matrix=bit,
        nrow=matrix.nrows,
        nnz=matrix.nnz,
        block_nrow=bit.block_rows_count,
        block_nnz=bit.nblocks,
        host_seconds=elapsed,
    )

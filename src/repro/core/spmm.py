"""SpMM on bitBSR — the paper's §7 extension, built on the same blocks.

``Y = A @ X`` with sparse A (bitBSR) and dense X.  Where SpMV broadcasts
one 8-element x segment across fragment B's columns and keeps only
column 0 of the result (Fig. 5), SpMM loads a *different* 8-wide slice
of X into each fragment-B column and keeps the whole 8x8 result tile —
full fragment utilization, which is why the paper expects the extension
to pay off.

The implementation mirrors :func:`repro.core.spmv.spaden_spmv`:
vectorized NumPy with tensor-core precision semantics (inputs rounded to
the storage precision, float32-or-wider accumulation).
"""

from __future__ import annotations

import numpy as np

from repro.constants import BLOCK_DIM
from repro.errors import KernelError
from repro.formats.bitbsr import BitBSRMatrix
from repro.gpu.mma import Precision, to_tf32

__all__ = ["spaden_spmm"]


def _round_operand(values: np.ndarray, precision: Precision) -> np.ndarray:
    v = values.astype(np.float32)
    if precision is Precision.FP16:
        return v.astype(np.float16).astype(np.float32)
    if precision is Precision.TF32:
        return to_tf32(v)
    return v


def spaden_spmm(
    bitbsr: BitBSRMatrix,
    dense: np.ndarray,
    precision: Precision | None = None,
) -> np.ndarray:
    """Multiply a bitBSR matrix by a dense matrix: ``Y = A @ X``.

    ``dense`` has shape ``(A.ncols, k)``.  Each stored nonzero at global
    position (r, c) contributes ``value * X[c, :]`` to ``Y[r, :]``; the
    per-tile accumulation order of the tensor-core formulation is
    associativity-equivalent, so the vectorized segment-sum below matches
    the fragment computation up to float rounding.
    """
    X = np.asarray(dense)
    if X.ndim != 2 or X.shape[0] != bitbsr.ncols:
        raise KernelError(f"dense operand has shape {X.shape}, expected ({bitbsr.ncols}, k)")
    if precision is None:
        precision = Precision.FP16 if bitbsr.value_dtype == np.float16 else Precision.TF32

    rows, cols = bitbsr.entry_coordinates()
    vals = _round_operand(bitbsr.values, precision)
    Xr = _round_operand(X, precision)
    # lint: ignore[fp64-upcast] -- operands are already rounded to the input
    # precision; the wide np.add.at accumulator only removes order sensitivity
    contributions = vals[:, None].astype(np.float64) * Xr[cols].astype(np.float64)
    # lint: ignore[fp64-upcast] -- see above; result is cast back to float32
    Y = np.zeros((bitbsr.nrows, X.shape[1]), dtype=np.float64)
    np.add.at(Y, rows, contributions)
    return Y.astype(np.float32)


def spmm_fragment_tiles(bitbsr: BitBSRMatrix, k: int) -> int:
    """Number of 16x16 MMA operations the SpMM pairing kernel issues.

    Two diagonal blocks per fragment A (as in SpMV), and ceil(k / 8)
    8-wide X panels per fragment B column half — the utilization metric
    the §7 extension improves (8x more useful output per MMA than SpMV).
    """
    if k <= 0:
        raise KernelError("k must be positive")
    lens = np.diff(bitbsr.block_row_pointers)
    top = lens[0::2]
    bottom = lens[1::2]
    if bottom.size < top.size:
        bottom = np.concatenate([bottom, [0]])
    steps = int(np.maximum(top, bottom).sum())
    panels = -(-k // BLOCK_DIM)
    return steps * panels

"""Block-density analysis (§5.4, Fig. 9).

Blocks are categorized by their nonzero count: *sparse* (nnz <= 32),
*medium* (33 <= nnz <= 48) and *dense* (nnz > 48).  The sparse-block
ratio is the structural predictor of Spaden's advantage over cuSPARSE
BSR (Fig. 9b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import BLOCK_SIZE
from repro.formats.bitbsr import BitBSRMatrix

__all__ = ["SPARSE_MAX", "MEDIUM_MAX", "BlockProfile", "categorize_blocks"]

#: Upper bound (inclusive) of the *sparse* block category.
SPARSE_MAX: int = 32
#: Upper bound (inclusive) of the *medium* block category.
MEDIUM_MAX: int = 48


@dataclass(frozen=True)
class BlockProfile:
    """Block-category census of one bitBSR matrix (one bar of Fig. 9a)."""

    nblocks: int
    sparse_blocks: int
    medium_blocks: int
    dense_blocks: int
    mean_block_nnz: float

    @property
    def sparse_ratio(self) -> float:
        return self.sparse_blocks / self.nblocks if self.nblocks else 0.0

    @property
    def medium_ratio(self) -> float:
        return self.medium_blocks / self.nblocks if self.nblocks else 0.0

    @property
    def dense_ratio(self) -> float:
        return self.dense_blocks / self.nblocks if self.nblocks else 0.0

    @property
    def fill_ratio(self) -> float:
        """Mean occupancy of stored blocks (nnz per 64 slots)."""
        return self.mean_block_nnz / BLOCK_SIZE

    def as_row(self) -> dict[str, float]:
        return {
            "sparse": self.sparse_ratio,
            "medium": self.medium_ratio,
            "dense": self.dense_ratio,
            "mean_block_nnz": self.mean_block_nnz,
        }


def categorize_blocks(bitbsr: BitBSRMatrix) -> BlockProfile:
    """Census the matrix's blocks into the three Fig. 9 categories."""
    k = bitbsr.block_nnz()
    sparse = int(np.count_nonzero(k <= SPARSE_MAX))
    dense = int(np.count_nonzero(k > MEDIUM_MAX))
    medium = int(k.size) - sparse - dense
    return BlockProfile(
        nblocks=int(k.size),
        sparse_blocks=sparse,
        medium_blocks=medium,
        dense_blocks=dense,
        mean_block_nnz=float(k.mean()) if k.size else 0.0,
    )

"""Algorithm 4 — extracting the result vector from the accumulator.

After the MMA loop, column 0 of the accumulator's top-left portion holds
the 8 results of the top block row and column 0 of the bottom-right
portion those of the bottom block row.  In the accumulator layout a
lane owns column 0 exactly when ``lid % 4 == 0``, and its row within the
portion is ``lid / 4`` — giving the 8 storing lanes of Algorithm 4.
"""

from __future__ import annotations

import numpy as np

from repro.constants import BLOCK_DIM
from repro.errors import KernelError
from repro.gpu.fragment import Fragment, FragmentKind
from repro.gpu.warp import Warp

__all__ = ["extract_result_vector"]


def extract_result_vector(
    warp: Warp,
    acc_frag: Fragment,
    block_row_top: int,
    block_row_bottom: int | None,
    output_name: str = "C_values",
) -> None:
    """Store the two 8-element y segments (Algorithm 4).

    ``acc_frag.x[0]`` of the storing lanes is the top segment,
    ``acc_frag.x[6]`` the bottom one.  Stores are predicated on
    ``lid % 4 == 0``; the remaining lanes hold duplicate columns of the
    broadcast multiply and stay idle.
    """
    if acc_frag.kind is not FragmentKind.ACCUMULATOR:
        raise KernelError("extraction expects an accumulator fragment")
    lid = warp.lanes
    storing = (lid % 4) == 0
    warp.count_int_ops(3)  # predicate + the two offset computations

    row_in_block = lid // 4
    top_vals = acc_frag.warp_read_register(0)
    offsets_top = block_row_top * BLOCK_DIM + row_in_block
    warp.store(output_name, offsets_top, top_vals, mask=storing)

    if block_row_bottom is not None:
        bottom_vals = acc_frag.warp_read_register(6)
        offsets_bot = block_row_bottom * BLOCK_DIM + row_in_block
        warp.store(output_name, offsets_bot, bottom_vals, mask=storing)

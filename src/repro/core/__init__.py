"""Spaden — the paper's primary contribution.

* :mod:`repro.core.reverse_engineering` — the §3 probe that discovers the
  fragment register layout by writing ``fragment.x[i] = i``,
* :mod:`repro.core.builder` — CSR -> bitBSR conversion (Fig. 4) with
  preprocessing cost accounting,
* :mod:`repro.core.decode` — Algorithm 2 (bitmap + vector decoding),
* :mod:`repro.core.pairing` — Algorithm 3 (diagonal block pairing + MMA),
* :mod:`repro.core.extract` — Algorithm 4 (result-vector extraction),
* :mod:`repro.core.spmv` — the public SpMV entry points,
* :mod:`repro.core.analysis` — block-density categorization (Fig. 9).
"""

from repro.core.ablation import BlockSizePoint, block_size_ablation
from repro.core.analysis import BlockProfile, categorize_blocks
from repro.core.builder import BuildReport, build_bitbsr
from repro.core.decode import decode_matrix_lane_values, decode_vector_lane_values
from repro.core.extract import extract_result_vector
from repro.core.pairing import pair_block_rows
from repro.core.reverse_engineering import DiscoveredLayout, probe_fragment_layout
from repro.core.precision import PrecisionReport, precision_study
from repro.core.sddmm import spaden_sddmm
from repro.core.spmm import spaden_spmm
from repro.core.spmm_simulated import spaden_spmm_simulated
from repro.core.spmv import spaden_spmv, spaden_spmv_simulated

__all__ = [
    "BlockSizePoint",
    "block_size_ablation",
    "PrecisionReport",
    "precision_study",
    "spaden_sddmm",
    "spaden_spmm",
    "spaden_spmm_simulated",
    "BlockProfile",
    "categorize_blocks",
    "BuildReport",
    "build_bitbsr",
    "decode_matrix_lane_values",
    "decode_vector_lane_values",
    "extract_result_vector",
    "pair_block_rows",
    "DiscoveredLayout",
    "probe_fragment_layout",
    "spaden_spmv",
    "spaden_spmv_simulated",
]

"""Mixed-precision accuracy study.

§2.2 claims the fp16-in / fp32-accumulate pipeline works "without
impacting the result's final accuracy".  This module measures that claim:
SpMV error of each precision mode against a float64 reference, both for
half-exact values (where the claim holds exactly) and for general values
(where fp16 rounding of inputs bounds the achievable accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.spmv import spaden_spmv
from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.coo import COOMatrix
from repro.gpu.mma import Precision

__all__ = ["PrecisionReport", "precision_study"]


@dataclass(frozen=True)
class PrecisionReport:
    """Error of one precision mode against the float64 reference."""

    precision: Precision
    max_abs_error: float
    max_rel_error: float
    rms_error: float

    @property
    def equivalent_bits(self) -> float:
        """Approximate significand bits retained (log2 of 1/rel error)."""
        if self.max_rel_error <= 0:
            return 53.0
        return float(min(53.0, -np.log2(self.max_rel_error)))


def precision_study(
    coo: COOMatrix,
    x: np.ndarray,
    precisions: tuple[Precision, ...] = (Precision.FP16, Precision.TF32, Precision.FP32),
) -> list[PrecisionReport]:
    """SpMV error of each mode vs a float64 ground truth."""
    x = np.asarray(x, dtype=np.float64)
    dense_ref = _float64_reference(coo, x)
    scale = float(np.abs(dense_ref).max()) or 1.0
    reports = []
    for precision in precisions:
        dtype = np.float16 if precision is Precision.FP16 else np.float32
        bit = BitBSRMatrix.from_coo(coo, value_dtype=dtype)
        y = spaden_spmv(bit, x.astype(np.float32), precision=precision).astype(np.float64)
        err = y - dense_ref
        reports.append(
            PrecisionReport(
                precision=precision,
                max_abs_error=float(np.abs(err).max(initial=0.0)),
                max_rel_error=float(np.abs(err).max(initial=0.0) / scale),
                rms_error=float(np.sqrt(np.mean(err**2))) if err.size else 0.0,
            )
        )
    return reports


def _float64_reference(coo: COOMatrix, x: np.ndarray) -> np.ndarray:
    y = np.zeros(coo.nrows, dtype=np.float64)
    np.add.at(y, coo.rows, coo.values.astype(np.float64) * x[coo.cols])
    return y

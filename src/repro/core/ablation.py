"""Block-size ablation for the bitBSR design choice (§4.2).

The paper fixes the block at 8x8 because one 64-bit integer covers it and
two blocks tile a fragment diagonally.  This module quantifies the
trade-off for alternative sizes: smaller blocks waste fewer zero bits
but multiply per-block overhead; larger blocks amortize overhead but
dilute occupancy and overflow native integer widths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.formats.bsr import BSRMatrix
from repro.formats.coo import COOMatrix

__all__ = ["BlockSizePoint", "block_size_ablation"]


@dataclass(frozen=True)
class BlockSizePoint:
    """Cost metrics of one candidate block size."""

    block_dim: int
    #: Bits in the per-block bitmap (block_dim^2).
    bitmap_bits: int
    #: Stored blocks.
    nblocks: int
    #: Mean nonzeros per stored block.
    mean_block_nnz: float
    #: Fraction of block slots holding true nonzeros.
    fill_ratio: float
    #: Device bytes per nonzero for a bitmap format at this size
    #: (fp16 values + bitmap + 4 B column + 4 B offset per block).
    bytes_per_nnz: float
    #: Whether one native integer (<= 64 bits) can hold the bitmap.
    native_bitmap: bool

    @property
    def overhead_bytes_per_block(self) -> float:
        return self.bitmap_bits / 8 + 8


def block_size_ablation(
    coo: COOMatrix, block_dims: tuple[int, ...] = (2, 4, 8, 16)
) -> list[BlockSizePoint]:
    """Evaluate the bitmap-block trade-off across candidate sizes."""
    points = []
    for dim in block_dims:
        if dim <= 0:
            raise KernelError("block_dim must be positive")
        bsr = BSRMatrix.from_coo(coo, block_dim=dim)
        bits = dim * dim
        overhead = bits / 8 + 4 + 4  # bitmap + block col + offset
        nnz = coo.nnz
        total = nnz * 2 + bsr.nblocks * overhead + (bsr.block_rows_count + 1) * 4
        points.append(
            BlockSizePoint(
                block_dim=dim,
                bitmap_bits=bits,
                nblocks=bsr.nblocks,
                mean_block_nnz=nnz / bsr.nblocks if bsr.nblocks else 0.0,
                fill_ratio=bsr.fill_ratio,
                bytes_per_nnz=total / nnz if nnz else float("inf"),
                native_bitmap=bits <= 64,
            )
        )
    return points

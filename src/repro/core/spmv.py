"""Public Spaden SpMV entry points.

Two execution paths share the same semantics:

* :func:`spaden_spmv_simulated` drives the lane-accurate simulator —
  every bitmap test, register write, MMA and predicated store happens
  per-lane through :mod:`repro.gpu`.  This is the ground truth for the
  algorithm and the source of exact traffic counters, but it is a Python
  loop over warps, so use it for verification-scale matrices.
* :func:`spaden_spmv` is the vectorized NumPy equivalent (identical
  arithmetic, batch-decoded blocks) used for full-scale benchmarking.

Both honor the mixed-precision pipeline: bitBSR stores half-precision
values, fragment B receives a half-precision x, products accumulate in
float32.
"""

from __future__ import annotations

import numpy as np

from repro.constants import BLOCK_DIM
from repro.errors import KernelError
from repro.formats.bitbsr import BitBSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.gpu.memory import GlobalMemory
from repro.gpu.mma import MMAUnit, Precision
from repro.gpu.warp import Warp
from repro.core.extract import extract_result_vector
from repro.core.pairing import pair_block_rows

__all__ = [
    "spaden_spmv",
    "spaden_spmv_many",
    "spaden_spmv_simulated",
    "spaden_spmv_simulated_many",
    "register_bitbsr_arrays",
]


def _input_precision(bitbsr: BitBSRMatrix) -> Precision:
    """FP16 when values are stored half, else TF32 (the L40 FP32 path)."""
    return Precision.FP16 if bitbsr.value_dtype == np.float16 else Precision.TF32


def register_bitbsr_arrays(
    memory: GlobalMemory, bitbsr: BitBSRMatrix, x: np.ndarray
) -> None:
    """Place all Spaden operands into simulated global memory.

    The x vector is padded to a whole number of 8-element segments and
    stored in the matrix's value precision (it feeds fragment B); the
    output is padded likewise and stored in float32.
    """
    memory.register("block_row_pointers", bitbsr.block_row_pointers.astype(np.int32))
    memory.register("block_cols", bitbsr.block_cols)
    memory.register("bitmaps", bitbsr.bitmaps)
    memory.register("block_offsets", bitbsr.block_offsets.astype(np.int32))
    memory.register("A_values", bitbsr.values)
    xpad = np.zeros(bitbsr.block_cols_count * BLOCK_DIM, dtype=bitbsr.value_dtype)
    xpad[: x.size] = x.astype(bitbsr.value_dtype)
    memory.register("B_values", xpad)
    memory.register(
        "C_values", np.zeros(bitbsr.block_rows_count * BLOCK_DIM, dtype=np.float32)
    )


def spaden_spmv_simulated(
    bitbsr: BitBSRMatrix,
    x: np.ndarray,
    precision: Precision | None = None,
    check_overflow: bool = False,
) -> tuple[np.ndarray, ExecutionStats]:
    """Run Spaden end-to-end on the simulator; returns (y, exact stats).

    One warp per pair of consecutive block rows (Fig. 5); the final warp
    of an odd-height matrix leaves its bottom-right portion empty.  With
    ``check_overflow`` the MMA unit raises
    :class:`~repro.errors.NumericalError` (with the lane/register
    coordinate) as soon as an accumulator register goes non-finite.
    """
    x = np.asarray(x)
    if x.ndim != 1 or x.shape[0] != bitbsr.ncols:
        raise KernelError(f"x has shape {x.shape}, expected ({bitbsr.ncols},)")
    if precision is None:
        precision = _input_precision(bitbsr)
    memory = GlobalMemory()
    register_bitbsr_arrays(memory, bitbsr, x)

    nbrows = bitbsr.block_rows_count
    for top in range(0, nbrows, 2):
        bottom = top + 1 if top + 1 < nbrows else None
        warp = Warp(memory, warp_id=top // 2)
        mma_unit = MMAUnit(precision, stats=memory.stats, check_overflow=check_overflow)
        acc = pair_block_rows(warp, mma_unit, bitbsr, top, bottom)
        extract_result_vector(warp, acc, top, bottom)

    y = memory.array("C_values")[: bitbsr.nrows].copy()
    return y, memory.stats


def spaden_spmv(
    bitbsr: BitBSRMatrix,
    x: np.ndarray,
    precision: Precision | None = None,
) -> np.ndarray:
    """Vectorized Spaden SpMV with tensor-core arithmetic semantics.

    Mathematically identical to :func:`spaden_spmv_simulated`: values and
    the x operand are rounded to the input precision, every product is a
    float32 multiply, and per-row sums accumulate in float32-or-wider.
    """
    x = np.asarray(x)
    if x.ndim != 1 or x.shape[0] != bitbsr.ncols:
        raise KernelError(f"x has shape {x.shape}, expected ({bitbsr.ncols},)")
    if precision is None:
        precision = _input_precision(bitbsr)

    rows, cols = bitbsr.entry_coordinates()
    vals = bitbsr.values.astype(np.float32)
    xf = x.astype(np.float32)
    if precision is Precision.FP16:
        vals = vals.astype(np.float16).astype(np.float32)
        xf = xf.astype(np.float16).astype(np.float32)
    elif precision is Precision.TF32:
        from repro.gpu.mma import to_tf32

        vals = to_tf32(vals)
        xf = to_tf32(xf)
    # lint: ignore[fp64-upcast] -- np.bincount only takes float64 weights;
    # products are already rounded to the input precision grid
    products = (vals * xf[cols]).astype(np.float64)
    y = np.bincount(rows, weights=products, minlength=bitbsr.nrows)
    return y.astype(np.float32)[: bitbsr.nrows]


def _check_batch(X: np.ndarray, ncols: int) -> np.ndarray:
    X = np.asarray(X)
    if X.ndim != 2 or X.shape[1] != ncols:
        raise KernelError(f"X has shape {X.shape}, expected (k, {ncols})")
    return X


def spaden_spmv_many(
    bitbsr: BitBSRMatrix,
    X: np.ndarray,
    precision: Precision | None = None,
) -> np.ndarray:
    """Batched Spaden SpMV: one bitBSR decode shared by every vector.

    ``X`` holds ``k`` input vectors as rows; the result row ``j`` is
    bitwise-identical to ``spaden_spmv(bitbsr, X[j])`` — the entry
    coordinates are expanded once, and each vector's per-row sums
    accumulate over the entries in the same storage order as the
    single-vector path, so the float64 partials (and their float32
    rounding) agree exactly.  This is the amortization the batched
    engine sells: the decode and conversion cost is paid once per batch
    instead of once per vector.
    """
    X = _check_batch(X, bitbsr.ncols)
    if precision is None:
        precision = _input_precision(bitbsr)
    k = X.shape[0]
    if k == 0:
        return np.zeros((0, bitbsr.nrows), dtype=np.float32)

    rows, cols = bitbsr.entry_coordinates()  # decoded once for the batch
    if rows.size == 0 or bitbsr.nrows == 0:
        return np.zeros((k, bitbsr.nrows), dtype=np.float32)
    vals = bitbsr.values.astype(np.float32)
    Xf = X.astype(np.float32)
    if precision is Precision.FP16:
        vals = vals.astype(np.float16).astype(np.float32)
        Xf = Xf.astype(np.float16).astype(np.float32)
    elif precision is Precision.TF32:
        from repro.gpu.mma import to_tf32

        vals = to_tf32(vals)
        Xf = to_tf32(Xf)
    # lint: ignore[fp64-upcast] -- np.bincount only takes float64 weights;
    # products are already rounded to the input precision grid
    products = (vals[None, :] * Xf[:, cols]).astype(np.float64)
    # One bincount over the combined (vector, row) bins.  Row-major ravel
    # keeps each vector's entries contiguous and in storage order, so the
    # accumulation order per bin matches the single-vector bincount.
    bins = rows[None, :] + np.int64(bitbsr.nrows) * np.arange(k, dtype=np.int64)[:, None]
    y = np.bincount(bins.ravel(), weights=products.ravel(), minlength=k * bitbsr.nrows)
    return y.astype(np.float32).reshape(k, bitbsr.nrows)


def spaden_spmv_simulated_many(
    bitbsr: BitBSRMatrix,
    X: np.ndarray,
    precision: Precision | None = None,
    check_overflow: bool = False,
) -> tuple[np.ndarray, ExecutionStats]:
    """Run a batch through the lane-accurate simulator; returns (Y, stats).

    The batch is processed *per warp*: the outer loop walks block-row
    pairs exactly as :func:`spaden_spmv_simulated` does, and each warp
    replays its Algorithm 2-4 work once per vector (each vector owns its
    own simulated global memory, so the sanitizer's race detection and
    the coalescing counters see ``k`` well-formed executions).  The
    merged counters are therefore exactly ``k`` times the single-vector
    counters — the analytic-profile identity extends to batches by
    multiplication.
    """
    X = _check_batch(X, bitbsr.ncols)
    if precision is None:
        precision = _input_precision(bitbsr)
    k = X.shape[0]
    memories = []
    for j in range(k):
        memory = GlobalMemory()
        register_bitbsr_arrays(memory, bitbsr, X[j])
        memories.append(memory)

    nbrows = bitbsr.block_rows_count
    for top in range(0, nbrows, 2):
        bottom = top + 1 if top + 1 < nbrows else None
        for memory in memories:
            warp = Warp(memory, warp_id=top // 2)
            mma_unit = MMAUnit(
                precision, stats=memory.stats, check_overflow=check_overflow
            )
            acc = pair_block_rows(warp, mma_unit, bitbsr, top, bottom)
            extract_result_vector(warp, acc, top, bottom)

    Y = np.zeros((k, bitbsr.nrows), dtype=np.float32)
    stats = ExecutionStats()
    for j, memory in enumerate(memories):
        Y[j] = memory.array("C_values")[: bitbsr.nrows]
        stats.merge(memory.stats)
    return Y, stats

"""Graceful-degradation SpMV dispatch.

Production SpMV must return a correct ``y`` even when the fast path is
unavailable — a corrupted bitBSR conversion, a perturbed fragment map, an
fp16 accumulator overflow.  :func:`dispatch_spmv` walks the
capability-derived fallback chain (see
:func:`repro.exec.default_chain`; with the built-in registry that is

    spaden -> spaden-no-tc -> cusparse-csr -> csr-scalar

) until one kernel survives all four stages of
:func:`repro.exec.execute` — ``prepare`` / ``verify`` / ``run`` /
``check``.  Any :class:`~repro.errors.ReproError` at any stage is
recorded as a :class:`DegradationEvent` — cause, stage, and the fallback
taken — and the chain advances.  Events are folded into
:attr:`repro.gpu.counters.ExecutionStats.degradation_log` so profiling
surfaces *why* an execution was slow, not just that it was.

Each fallback re-prepares from the caller's CSR, so an injected fault in
one kernel's converted operand never contaminates the next kernel's
attempt: the chain degrades performance, never correctness.

This module is now a thin wrapper over :mod:`repro.exec` (which owns the
stage machine and the chain walker); it keeps the PR-1 surface —
``DEFAULT_CHAIN``, :class:`DegradationEvent`, :class:`DispatchResult`,
:func:`dispatch_spmv` — stable for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import KernelError
from repro.exec import (
    DegradationEvent,
    ExecutionMode,
    default_chain,
    execute_chain,
    verify_operand,
)
from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.kernels.base import PreparedOperand

__all__ = ["DEFAULT_CHAIN", "DegradationEvent", "DispatchResult", "dispatch_spmv"]

#: Stage names in execution order, for reference.
STAGES = ("prepare", "verify", "run", "check")

# kept for engine/back-compat imports; the implementation lives in exec
_verify_operand = verify_operand


def __getattr__(name: str):
    # DEFAULT_CHAIN is derived from the kernel registry, which fills in
    # when repro.kernels imports — too late for a module-level constant
    # here, so it is computed on first attribute access (PEP 562).
    if name == "DEFAULT_CHAIN":
        return default_chain()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class DispatchResult:
    """Outcome of a graceful-degradation dispatch."""

    #: The computed result vector (float32).
    y: np.ndarray
    #: Name of the kernel that produced ``y``.
    kernel: str
    #: One event per abandoned attempt, in order.
    events: list[DegradationEvent]
    #: Kernel names tried, including the successful one.
    attempts: list[str]
    #: Counters for the successful execution, with ``degradation_log``
    #: holding :attr:`events`.
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    @property
    def degraded(self) -> bool:
        return bool(self.events)


def dispatch_spmv(
    csr: CSRMatrix,
    x: np.ndarray,
    chain: Sequence[str] | None = None,
    *,
    planner=None,
    deep_verify: bool = True,
    simulate: bool = False,
    corrupt_hook: Callable[[str, PreparedOperand], None] | None = None,
    deadline=None,
    retry=None,
    breakers=None,
) -> DispatchResult:
    """Compute ``y = A @ x`` with graceful degradation along ``chain``.

    ``chain`` defaults to the registry-derived
    :func:`~repro.exec.default_chain`.  ``planner`` (a
    :class:`repro.plan.Planner`) asks for a per-operand
    :class:`~repro.plan.ExecutionPlan` instead — its ranked kernel
    order replaces the static chain for this dispatch; an explicit
    ``chain`` wins over ``planner``, and with neither the walk is the
    byte-identical pre-planner path.  ``deep_verify=False`` skips the
    pre-flight verification stage (for callers who amortize it
    elsewhere); corruption then surfaces at the ``run`` or ``check``
    stage instead of crashing.  ``simulate`` routes kernels with the
    SIMULATED capability through the lane-accurate simulator with
    accumulator-overflow checking (use for verification-scale matrices
    only); kernels without it run numerically.  ``corrupt_hook(name,
    prepared)`` is a fault-injection seam for tests: it may mutate a
    kernel's freshly prepared operand before verification.

    ``deadline`` / ``retry`` / ``breakers`` thread the
    :mod:`repro.resilience` policies into the chain walk (see
    :func:`repro.exec.execute_chain`); all default to off.

    Raises :class:`~repro.errors.KernelError` only if *every* kernel in
    the chain fails.
    """

    def pick_mode(kernel) -> ExecutionMode:
        if simulate and kernel.capabilities.simulate:
            return ExecutionMode.SIMULATED
        return ExecutionMode.NUMERIC

    if chain is None and planner is not None:
        chain = planner.plan(csr)

    result = execute_chain(
        csr,
        np.asarray(x),
        chain,
        mode=pick_mode,
        faults=(corrupt_hook,) if corrupt_hook is not None else (),
        check_overflow=simulate,
        deep_verify=deep_verify,
        deadline=deadline,
        retry=retry,
        breakers=breakers,
    )
    from repro.obs import get_registry

    get_registry().counter(
        "dispatch_total",
        "Graceful-degradation dispatches, by outcome.",
        labels=("status",),
    ).inc(status="degraded" if result.events else "clean")
    stats = result.stats if result.stats is not None else ExecutionStats()
    stats.degradation_log.extend(result.events)
    return DispatchResult(
        y=result.y,
        kernel=result.kernel,
        events=result.events,
        attempts=result.attempts,
        stats=stats,
    )

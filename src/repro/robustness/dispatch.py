"""Graceful-degradation SpMV dispatch.

Production SpMV must return a correct ``y`` even when the fast path is
unavailable — a corrupted bitBSR conversion, a perturbed fragment map, an
fp16 accumulator overflow.  :func:`dispatch_spmv` wraps the kernel
registry with a fallback chain

    spaden -> spaden-no-tc -> cusparse-csr -> csr-scalar

and walks it until one kernel survives all four stages:

``prepare``
    convert the pristine CSR into the kernel's format,
``verify``
    deep-verify every :class:`~repro.formats.base.SparseMatrix` in the
    prepared operand, and for tensor-core kernels check the simulated
    fragment layout tables against the §3 mapping,
``run``
    execute the SpMV (optionally through the lane-accurate simulator
    with accumulator-overflow checking),
``check``
    reject a non-finite or mis-shaped ``y``.

Any :class:`~repro.errors.ReproError` at any stage is recorded as a
:class:`DegradationEvent` — cause, stage, and the fallback taken — and
the chain advances.  Events are folded into
:attr:`repro.gpu.counters.ExecutionStats.degradation_log` so profiling
surfaces *why* an execution was slow, not just that it was.

Each fallback re-prepares from the caller's CSR, so an injected fault in
one kernel's converted operand never contaminates the next kernel's
attempt: the chain degrades performance, never correctness.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import KernelError, NumericalError, ReproError
from repro.formats.base import SparseMatrix
from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.gpu.fragment import verify_lane_mapping
from repro.kernels.base import PreparedOperand, get_kernel

__all__ = ["DEFAULT_CHAIN", "DegradationEvent", "DispatchResult", "dispatch_spmv"]

#: Fastest-first fallback order: the paper's method, its CUDA-core
#: variant, the cuSPARSE-style vector kernel, and the always-works
#: scalar baseline.
DEFAULT_CHAIN: tuple[str, ...] = (
    "spaden",
    "spaden-no-tc",
    "cusparse-csr",
    "csr-scalar",
)

#: Stage names in execution order, for reference.
STAGES = ("prepare", "verify", "run", "check")


@dataclass(frozen=True)
class DegradationEvent:
    """One abandoned kernel attempt."""

    #: Kernel that failed.
    kernel: str
    #: Stage the failure surfaced in: prepare / verify / run / check.
    stage: str
    #: Exception class name (e.g. ``"BitmapPopcountError"``).
    cause: str
    #: The exception message.
    detail: str
    #: Kernel tried next, or ``None`` if the chain was exhausted.
    fallback: str | None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        nxt = f" -> {self.fallback}" if self.fallback else " (chain exhausted)"
        return f"[{self.kernel}/{self.stage}] {self.cause}: {self.detail}{nxt}"


@dataclass
class DispatchResult:
    """Outcome of a graceful-degradation dispatch."""

    #: The computed result vector (float32).
    y: np.ndarray
    #: Name of the kernel that produced ``y``.
    kernel: str
    #: One event per abandoned attempt, in order.
    events: list[DegradationEvent]
    #: Kernel names tried, including the successful one.
    attempts: list[str]
    #: Counters for the successful execution, with ``degradation_log``
    #: holding :attr:`events`.
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    @property
    def degraded(self) -> bool:
        return bool(self.events)


def _operand_matrices(prepared: PreparedOperand):
    """Every SparseMatrix inside a prepared operand (data may be a tuple)."""
    data = prepared.data
    items = data if isinstance(data, (tuple, list)) else (data,)
    return [m for m in items if isinstance(m, SparseMatrix)]


def _verify_operand(kernel, prepared: PreparedOperand) -> None:
    for matrix in _operand_matrices(prepared):
        matrix.verify(deep=True)
    if kernel.uses_tensor_cores:
        verify_lane_mapping()


def _check_result(y: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    y = np.asarray(y)
    if y.shape != (shape[0],):
        raise NumericalError(f"result has shape {y.shape}, expected ({shape[0]},)")
    if not np.isfinite(y).all():
        row = int(np.flatnonzero(~np.isfinite(y))[0])
        raise NumericalError(f"non-finite result: y[{row}] = {y[row]!r}")
    return y.astype(np.float32)


def dispatch_spmv(
    csr: CSRMatrix,
    x: np.ndarray,
    chain: Sequence[str] = DEFAULT_CHAIN,
    *,
    deep_verify: bool = True,
    simulate: bool = False,
    corrupt_hook: Callable[[str, PreparedOperand], None] | None = None,
) -> DispatchResult:
    """Compute ``y = A @ x`` with graceful degradation along ``chain``.

    ``deep_verify=False`` skips the pre-flight verification stage (for
    callers who amortize it elsewhere); corruption then surfaces at the
    ``run`` or ``check`` stage instead of crashing.  ``simulate`` routes
    kernels that expose a lane-accurate ``simulate`` method through the
    simulator with accumulator-overflow checking (use for
    verification-scale matrices only).  ``corrupt_hook(name, prepared)``
    is a fault-injection seam for tests: it may mutate a kernel's
    freshly prepared operand before verification.

    Raises :class:`~repro.errors.KernelError` only if *every* kernel in
    the chain fails.
    """
    if not chain:
        raise KernelError("empty kernel chain")
    x = np.asarray(x)
    events: list[DegradationEvent] = []
    attempts: list[str] = []

    for i, name in enumerate(chain):
        fallback = chain[i + 1] if i + 1 < len(chain) else None
        attempts.append(name)
        stage = "prepare"
        try:
            kernel = get_kernel(name)
            prepared = kernel.prepare(csr)
            if corrupt_hook is not None:
                corrupt_hook(name, prepared)
            if deep_verify:
                stage = "verify"
                _verify_operand(kernel, prepared)
            stage = "run"
            if simulate and hasattr(kernel, "simulate"):
                kwargs = {}
                if "check_overflow" in inspect.signature(kernel.simulate).parameters:
                    kwargs["check_overflow"] = True
                y, stats = kernel.simulate(prepared, x, **kwargs)
            else:
                y = kernel.run(prepared, x)
                stats = ExecutionStats()
            stage = "check"
            y = _check_result(y, prepared.shape)
        except ReproError as exc:
            events.append(
                DegradationEvent(name, stage, type(exc).__name__, str(exc), fallback)
            )
            continue
        stats.degradation_log.extend(events)
        return DispatchResult(y=y, kernel=name, events=events, attempts=attempts, stats=stats)

    summary = "; ".join(f"{e.kernel}/{e.stage}: {e.cause}" for e in events)
    raise KernelError(f"all kernels in chain {tuple(chain)} failed ({summary})")

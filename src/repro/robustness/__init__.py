"""Fault injection and graceful degradation for the Spaden reproduction.

Three pieces work together:

* the deep verifiers on every format (``matrix.verify(deep=True)`` in
  :mod:`repro.formats`), which turn silent corruption into structured
  :class:`~repro.errors.VerificationError` subclasses with coordinates,
* :mod:`repro.robustness.faults`, a seeded registry of named corruption
  models that break exactly the invariants the verifiers guard,
* :mod:`repro.robustness.dispatch`, a kernel dispatcher that catches
  those failures and falls back along the registry-derived chain
  (``spaden -> spaden-no-tc -> cusparse-csr -> csr-scalar`` with the
  built-in kernels), logging each degradation instead of crashing.

See ``docs/robustness.md`` for the invariant-by-invariant mapping to the
paper's §4.2 format definition, and ``docs/architecture.md`` for the
execution layer the dispatcher is built on.
"""

from repro.robustness.dispatch import (
    DegradationEvent,
    DispatchResult,
    dispatch_spmv,
)
from repro.robustness.faults import (
    FaultModel,
    FaultReport,
    available_faults,
    corrupt,
    faults_for_format,
    get_fault,
    inject_lane_fault,
)

__all__ = [
    "DEFAULT_CHAIN",
    "DegradationEvent",
    "DispatchResult",
    "dispatch_spmv",
    "FaultModel",
    "FaultReport",
    "available_faults",
    "corrupt",
    "faults_for_format",
    "get_fault",
    "inject_lane_fault",
]


def __getattr__(name: str):
    # live view of the registry-derived chain (PEP 562), mirroring
    # repro.robustness.dispatch.DEFAULT_CHAIN
    if name == "DEFAULT_CHAIN":
        from repro.exec import default_chain

        return default_chain()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Seeded, composable fault injection for the Spaden reproduction.

Spaden's correctness hangs on fragile invariants — ``popcount(bitmap) ==
nnz`` per block, exclusive-scanned offsets, in-range indices, the §3
register/element mapping.  This module corrupts healthy instances in the
precise ways those invariants can break in the wild (bit rot, truncated
transfers, conversion bugs), so the deep verifiers in
:mod:`repro.formats` and the graceful-degradation dispatcher in
:mod:`repro.robustness.dispatch` can be *proven* to catch what they
claim.

Every fault model is registered by name, states which formats it can
corrupt, and names the exception types its corruption must be detected
with.  Injection is seeded and mutates a deep copy, so tests are
reproducible and the pristine matrix survives::

    corrupted, report = corrupt(bitbsr, "bitmap-bit-flip", seed=7)
    corrupted.verify(deep=True)   # raises BitmapPopcountError at report.coord

The one non-format fault, ``lane-mapping-perturb``, attacks the GPU
simulator's fragment layout tables instead; use it as a context manager
via :func:`inject_lane_fault`.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.errors import (
    BitmapPopcountError,
    EmptyBlockError,
    IndexRangeError,
    NonFiniteValueError,
    OffsetScanError,
    PointerMonotonicityError,
    ReproError,
    VerificationError,
)
from repro.formats.base import SparseMatrix

__all__ = [
    "FaultReport",
    "FaultModel",
    "register_fault",
    "get_fault",
    "available_faults",
    "faults_for_format",
    "corrupt",
    "inject_lane_fault",
    "LANE_FAULT",
]

_U64 = np.uint64


@dataclass(frozen=True)
class FaultReport:
    """What a fault injection actually changed."""

    #: Registry name of the applied fault model.
    fault: str
    #: Format (or subsystem) that was corrupted.
    target: str
    #: Coordinate of the corruption (block/row/lane indices; model-specific).
    coord: tuple
    #: Human-readable description of the mutation.
    detail: str


@dataclass(frozen=True)
class FaultModel:
    """One named way of breaking a matrix (or the simulator)."""

    name: str
    description: str
    #: ``format_name`` values this model can corrupt (empty = GPU-scope).
    formats: tuple[str, ...]
    #: Exception types a verifier/dispatcher must raise on the corruption.
    detected_by: tuple[type[BaseException], ...]
    _inject: Callable[[SparseMatrix, np.random.Generator], FaultReport] = field(repr=False)

    def inject(self, matrix: SparseMatrix, rng: np.random.Generator) -> FaultReport:
        """Mutate ``matrix`` in place; returns what was changed."""
        if self.formats and matrix.format_name not in self.formats:
            raise ValueError(
                f"fault {self.name!r} does not apply to format {matrix.format_name!r} "
                f"(applies to {self.formats})"
            )
        return self._inject(matrix, rng)


# concurrency: not-shared -- populated by @register_fault at import time
# (single-threaded module execution); read-only once imports settle
_REGISTRY: dict[str, FaultModel] = {}


def register_fault(
    name: str,
    description: str,
    formats: tuple[str, ...],
    detected_by: tuple[type[BaseException], ...],
):
    """Decorator registering an injection function as a named fault model."""

    def wrap(fn: Callable[[SparseMatrix, np.random.Generator], FaultReport]) -> FaultModel:
        if name in _REGISTRY:
            raise ValueError(f"fault {name!r} already registered")
        model = FaultModel(name, description, formats, detected_by, fn)
        _REGISTRY[name] = model
        return model

    return wrap


def get_fault(name: str) -> FaultModel:
    """Look up a fault model by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown fault {name!r}; known: {sorted(_REGISTRY)}") from None


def available_faults() -> list[str]:
    """Names of all registered fault models, sorted."""
    return sorted(_REGISTRY)


def faults_for_format(format_name: str) -> list[str]:
    """Names of the fault models applicable to one format."""
    return sorted(n for n, m in _REGISTRY.items() if format_name in m.formats)


def corrupt(
    matrix: SparseMatrix, fault: str, seed: int = 0
) -> tuple[SparseMatrix, FaultReport]:
    """Return a corrupted deep copy of ``matrix`` plus the change report."""
    model = get_fault(fault)
    victim = copy.deepcopy(matrix)
    report = model.inject(victim, np.random.default_rng(seed))
    return victim, report


# -- helpers -----------------------------------------------------------------


def _require_blocks(matrix: SparseMatrix, fault: str) -> None:
    if getattr(matrix, "nblocks", 0) == 0:
        raise ValueError(f"fault {fault!r} needs at least one stored block")


def _require_nnz(matrix: SparseMatrix, fault: str) -> None:
    if matrix.nnz == 0:
        raise ValueError(f"fault {fault!r} needs at least one stored value")


def _block_coord(matrix: SparseMatrix, block: int) -> tuple[int, int]:
    """(block_row, block_col) of stored block ``block`` for either bitmap format."""
    if hasattr(matrix, "block_rows"):  # bitCOO: explicit coordinates
        return int(matrix.block_rows[block]), int(matrix.block_cols[block])
    ptr = matrix.block_row_pointers
    brow = int(np.searchsorted(ptr, block, side="right") - 1)
    return brow, int(matrix.block_cols[block])


_BITMAP_FORMATS = ("bitbsr", "bitcoo")
_POINTER_FORMATS = ("csr", "bitbsr")
_VALUE_FORMATS = ("csr", "coo", "bitbsr", "bitcoo")


# -- format-scope fault models -----------------------------------------------


@register_fault(
    "bitmap-bit-flip",
    "flip one random bit of one block bitmap (single-event upset)",
    _BITMAP_FORMATS,
    (BitmapPopcountError, OffsetScanError, EmptyBlockError),
)
def _bitmap_bit_flip(matrix, rng):
    _require_blocks(matrix, "bitmap-bit-flip")
    block = int(rng.integers(matrix.nblocks))
    bit = int(rng.integers(64))
    matrix.bitmaps[block] ^= _U64(1) << _U64(bit)
    return FaultReport(
        "bitmap-bit-flip", matrix.format_name,
        _block_coord(matrix, block) + (bit,),
        f"flipped bit {bit} of bitmap {block}",
    )


@register_fault(
    "bitmap-clear",
    "zero one block bitmap entirely (lost metadata word)",
    _BITMAP_FORMATS,
    (EmptyBlockError, BitmapPopcountError),
)
def _bitmap_clear(matrix, rng):
    _require_blocks(matrix, "bitmap-clear")
    block = int(rng.integers(matrix.nblocks))
    matrix.bitmaps[block] = _U64(0)
    return FaultReport(
        "bitmap-clear", matrix.format_name, _block_coord(matrix, block),
        f"cleared bitmap of block {block}",
    )


@register_fault(
    "value-nan",
    "poison one stored value with NaN",
    _VALUE_FORMATS,
    (NonFiniteValueError,),
)
def _value_nan(matrix, rng):
    _require_nnz(matrix, "value-nan")
    pos = int(rng.integers(matrix.values.size))
    matrix.values[pos] = np.nan
    return FaultReport(
        "value-nan", matrix.format_name, (pos,), f"values[{pos}] = NaN"
    )


@register_fault(
    "value-inf",
    "poison one stored value with +Inf",
    _VALUE_FORMATS,
    (NonFiniteValueError,),
)
def _value_inf(matrix, rng):
    _require_nnz(matrix, "value-inf")
    pos = int(rng.integers(matrix.values.size))
    matrix.values[pos] = np.inf
    return FaultReport(
        "value-inf", matrix.format_name, (pos,), f"values[{pos}] = +Inf"
    )


@register_fault(
    "value-overflow",
    "write a magnitude beyond fp16 range into the packed half-precision "
    "values (saturates to Inf in storage)",
    ("bitbsr", "bitcoo"),
    (NonFiniteValueError,),
)
def _value_overflow(matrix, rng):
    _require_nnz(matrix, "value-overflow")
    if matrix.values.dtype != np.float16:
        raise ValueError("value-overflow targets half-precision storage")
    pos = int(rng.integers(matrix.values.size))
    # 1e6 is far beyond fp16's 65504 max: the assignment itself saturates
    with np.errstate(over="ignore"):
        matrix.values[pos] = 1e6
    return FaultReport(
        "value-overflow", matrix.format_name, (pos,),
        f"values[{pos}] = 1e6 -> {float(matrix.values[pos])!r} after fp16 rounding",
    )


def _pointer_array_name(matrix) -> str:
    return "row_pointers" if matrix.format_name == "csr" else "block_row_pointers"


@register_fault(
    "offset-truncate",
    "chop the tail off the row-pointer array (truncated transfer)",
    _POINTER_FORMATS,
    (OffsetScanError,),
)
def _offset_truncate(matrix, rng):
    name = _pointer_array_name(matrix)
    ptr = getattr(matrix, name)
    if ptr.size < 2:
        raise ValueError("offset-truncate needs a non-trivial pointer array")
    drop = int(rng.integers(1, min(4, ptr.size - 1) + 1))
    setattr(matrix, name, ptr[:-drop].copy())
    return FaultReport(
        "offset-truncate", matrix.format_name, (ptr.size - drop,),
        f"dropped the last {drop} entries of {name}",
    )


@register_fault(
    "pointer-shuffle",
    "make one interior row pointer run backwards (scrambled scan)",
    _POINTER_FORMATS,
    (PointerMonotonicityError,),
)
def _pointer_shuffle(matrix, rng):
    name = _pointer_array_name(matrix)
    ptr = getattr(matrix, name)
    if ptr.size < 3:
        raise ValueError("pointer-shuffle needs at least one interior pointer")
    row = int(rng.integers(1, ptr.size - 1))
    ptr[row] = ptr[row + 1] + 1  # strictly above its successor
    return FaultReport(
        "pointer-shuffle", matrix.format_name, (row,),
        f"{name}[{row}] raised above its successor",
    )


@register_fault(
    "col-out-of-range",
    "point one stored column index past the matrix edge",
    ("csr", "coo", "bitbsr", "bitcoo"),
    (IndexRangeError,),
)
def _col_out_of_range(matrix, rng):
    if matrix.format_name in ("csr", "coo"):
        _require_nnz(matrix, "col-out-of-range")
        cols = matrix.col_indices if matrix.format_name == "csr" else matrix.cols
        pos = int(rng.integers(cols.size))
        cols[pos] = matrix.ncols + 7
        return FaultReport(
            "col-out-of-range", matrix.format_name, (pos,),
            f"column index {pos} set to {matrix.ncols + 7}",
        )
    _require_blocks(matrix, "col-out-of-range")
    pos = int(rng.integers(matrix.block_cols.size))
    matrix.block_cols[pos] = matrix.block_cols_count + 3
    return FaultReport(
        "col-out-of-range", matrix.format_name, (pos,),
        f"block column {pos} set to {matrix.block_cols_count + 3}",
    )


@register_fault(
    "offset-scan-corrupt",
    "bump one block offset so it is no longer the exclusive popcount scan",
    _BITMAP_FORMATS,
    (OffsetScanError,),
)
def _offset_scan_corrupt(matrix, rng):
    _require_blocks(matrix, "offset-scan-corrupt")
    block = int(rng.integers(1, matrix.block_offsets.size))
    matrix.block_offsets[block] += 1
    return FaultReport(
        "offset-scan-corrupt", matrix.format_name, (block,),
        f"block_offsets[{block}] incremented",
    )


# -- GPU-scope fault: perturb the §3 lane/register mapping ---------------------

from repro.errors import LayoutError  # noqa: E402  (grouped with its fault)
from repro.gpu import fragment as _fragment  # noqa: E402


def _lane_inject(_matrix, _rng):  # pragma: no cover - never called directly
    raise ReproError("lane-mapping-perturb is GPU-scope; use inject_lane_fault()")


LANE_FAULT = register_fault(
    "lane-mapping-perturb",
    "swap two slots of the accumulator fragment's register->element table "
    "(use via inject_lane_fault())",
    (),
    (LayoutError,),
)(_lane_inject)


@contextmanager
def inject_lane_fault(seed: int = 0) -> Iterator[FaultReport]:
    """Perturb the simulated fragment layout tables for the duration.

    Swaps the element coordinates of two (lane, register) slots in the
    accumulator map — the software analog of a mis-wired register file.
    :func:`repro.gpu.fragment.verify_lane_mapping` detects the
    perturbation; the original tables are always restored on exit.
    """
    from repro.constants import REGISTERS_PER_LANE, WARP_SIZE
    from repro.gpu.fragment import FragmentKind

    rng = np.random.default_rng(seed)
    kind = FragmentKind.ACCUMULATOR
    rows, cols = _fragment._MAPS[kind]
    a = (int(rng.integers(WARP_SIZE)), int(rng.integers(REGISTERS_PER_LANE)))
    b = a
    while b == a:
        b = (int(rng.integers(WARP_SIZE)), int(rng.integers(REGISTERS_PER_LANE)))
    patched_rows, patched_cols = rows.copy(), cols.copy()
    for grid in (patched_rows, patched_cols):
        grid[a], grid[b] = grid[b], grid[a]
    _fragment._MAPS[kind] = (patched_rows, patched_cols)
    try:
        yield FaultReport(
            "lane-mapping-perturb", "gpu.fragment", a + b,
            f"swapped {kind.value} slots lane{a[0]}.x[{a[1]}] <-> lane{b[0]}.x[{b[1]}]",
        )
    finally:
        _fragment._MAPS[kind] = (rows, cols)

"""Reproduce the paper's §3 reverse-engineering experiment (Fig. 2).

Writes ``fragment.x[i] = i`` in every lane of the simulated tensor core,
prints the resulting 16x16 layout, and derives the register <-> portion
mapping from the observations — exactly the probe the paper ran on real
V100/L40 silicon.

Run:  python examples/tensor_core_probe.py
"""

import numpy as np

from repro.core.reverse_engineering import probe_fragment_layout, valid_register_range
from repro.gpu.fragment import Fragment, FragmentKind


def main() -> None:
    print(f"valid register indices per lane: 0..{valid_register_range() - 1}")
    print("(the paper's first surprise: only 8 of them, Fig. 2)\n")

    frag = Fragment(FragmentKind.ACCUMULATOR)
    for reg in range(8):
        frag.warp_write_register(reg, np.full(32, float(reg)))
    print("fragment contents after x[i] = i in every lane:")
    for row in frag.to_matrix().astype(int):
        print("  " + " ".join(str(v) for v in row))

    print("\nderived portion -> register mapping:")
    layout = probe_fragment_layout(FragmentKind.ACCUMULATOR)
    names = ("top-left", "top-right", "bottom-left", "bottom-right")
    for name, regs in zip(names, layout.portion_registers):
        print(f"  {name:>12}: fragment.x[{regs[0]}, {regs[1]}]")

    print("\nlane ownership (which lane holds each element), top-left portion:")
    for row in layout.owner_lane[:8, :8]:
        print("  " + " ".join(f"{v:2d}" for v in row))
    print("\n(compare with the paper's Fig. 1: lane l holds row l//4,")
    print(" columns 2*(l%4) and 2*(l%4)+1 — two consecutive elements)")


if __name__ == "__main__":
    main()

"""Quickstart: sparse matrix -> bitBSR -> SpMV on (simulated) tensor cores.

Builds a small banded matrix, converts it to the paper's bitBSR format,
runs Spaden's SpMV three ways (vectorized, lane-accurate simulation, and
scipy reference), and prints memory and traffic statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.builder import build_bitbsr
from repro.core.spmv import spaden_spmv, spaden_spmv_simulated
from repro.formats.convert import to_scipy
from repro.formats.memory import format_footprint
from repro.kernels import get_kernel
from repro.gpu.spec import get_gpu
from repro.matrices.random import random_banded
from repro.matrices.generators import fp16_exact_values
from repro.perf import estimate_time
from repro.perf.metrics import gflops


def main() -> None:
    rng = np.random.default_rng(0)
    # inside Spaden's effective scope: nrow > 10,000 and nnz/nrow > 32
    n = 16_384
    coo = random_banded(n, 56, fill=0.4, seed=0)
    print(f"matrix: {n}x{n}, nnz={coo.nnz} ({coo.nnz / n:.1f} per row)")

    # 1. convert to bitBSR (Fig. 4 of the paper)
    report = build_bitbsr(coo)
    bit = report.matrix
    print(
        f"bitBSR: {bit.nblocks} blocks of 8x8, "
        f"{report.mean_block_nnz:.1f} nnz/block, "
        f"built in {report.host_ns_per_nnz:.1f} ns/nnz (host)"
    )

    # 2. SpMV three ways
    x = fp16_exact_values(rng, n)
    y_fast = spaden_spmv(bit, x)
    y_sim, stats = spaden_spmv_simulated(bit, x)
    y_ref = to_scipy(coo) @ x
    print(f"max |fast - reference| = {np.abs(y_fast - y_ref).max():.2e}")
    print(f"max |simulated - fast| = {np.abs(y_sim - y_fast).max():.2e}")
    print(
        f"simulated execution: {stats.mma_ops} tensor-core MMAs, "
        f"{stats.load_transactions} load transactions, "
        f"{stats.global_load_bytes / coo.nnz:.1f} B loaded per nnz"
    )

    # 3. memory footprint vs CSR (the Fig. 10b comparison)
    for name in ("csr", "bitbsr"):
        print(format_footprint(coo.convert(name)))

    # 4. modeled performance on the paper's GPUs
    csr = coo.convert("csr")
    x32 = x.astype(np.float32)
    for kernel_name in ("spaden", "cusparse-csr"):
        kernel = get_kernel(kernel_name)
        prep = kernel.prepare(csr)
        profile = kernel.profile(prep, x32)
        for gpu_name in ("L40", "V100"):
            tb = estimate_time(profile, get_gpu(gpu_name))
            print(
                f"{kernel.label:>14} on {gpu_name}: {tb.total * 1e6:7.1f} us "
                f"({gflops(csr.nnz, tb.total):6.1f} GFLOPS, {tb.bound}-bound)"
            )


if __name__ == "__main__":
    main()

"""PageRank over a power-law web graph with Spaden in the inner loop.

The paper's introduction motivates SpMV through graph analytics; this
example builds a synthetic web graph (the webbase-1M analog, scaled
down), converts its transition matrix to bitBSR and iterates
``r <- d P r + teleport`` with Spaden's SpMV.

Run:  python examples/pagerank_webgraph.py
"""

import numpy as np

from repro.apps.pagerank import pagerank, transition_matrix
from repro.core.builder import build_bitbsr
from repro.core.spmv import spaden_spmv
from repro.formats.csr import CSRMatrix
from repro.gpu.mma import Precision
from repro.matrices import generate_matrix


def main() -> None:
    web = generate_matrix("webbase1M", scale=0.02)
    adjacency = web.csr.tocoo()
    n = adjacency.nrows
    print(f"web graph: {n} pages, {adjacency.nnz} links")

    P = transition_matrix(adjacency)
    dangling = adjacency.row_counts() == 0
    print(f"dangling pages: {int(dangling.sum())}")

    bit = build_bitbsr(P.tocoo(), value_dtype=np.float32).matrix
    print(
        f"transition matrix in bitBSR: {bit.nblocks} blocks, "
        f"{bit.nbytes / adjacency.nnz:.2f} B/link "
        f"(CSR: {CSRMatrix.from_coo(P.tocoo()).nbytes / adjacency.nnz:.2f} B/link)"
    )

    result = pagerank(
        lambda v: spaden_spmv(bit, v, precision=Precision.FP32),
        n,
        dangling_mask=dangling,
        tol=1e-8,
    )
    print(f"converged={result.converged} after {result.iterations} iterations")
    top = np.argsort(result.ranks)[::-1][:5]
    print("top pages by rank:")
    for page in top:
        print(f"  page {page:>6}: {result.ranks[page]:.6f}")


if __name__ == "__main__":
    main()

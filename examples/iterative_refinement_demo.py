"""Mixed-precision iterative refinement with the fp16 tensor-core SpMV.

Reproduces the pattern of Haidar et al. (the paper's related work [17]):
the expensive operator runs in half precision on (simulated) tensor
cores, a float64 outer loop corrects the defects, and the solution still
reaches ~fp64 accuracy.

Run:  python examples/iterative_refinement_demo.py
"""

import numpy as np

from repro.apps.refinement import iterative_refinement, jacobi_preconditioner
from repro.core.builder import build_bitbsr
from repro.core.spmv import spaden_spmv
from repro.formats.coo import COOMatrix
from repro.matrices.random import random_banded


def main() -> None:
    n = 2048
    rng = np.random.default_rng(17)
    # diagonally dominant banded system
    band = random_banded(n, 10, fill=0.6, seed=17)
    off = band.todense() * 0.05
    np.fill_diagonal(off, 4.0)
    A = COOMatrix.from_dense(off.astype(np.float32))
    x_true = rng.standard_normal(n)
    b = A.todense().astype(np.float64) @ x_true
    print(f"system: {n} unknowns, nnz={A.nnz}, diagonally dominant")

    bit16 = build_bitbsr(A, value_dtype=np.float16).matrix
    low = lambda v: spaden_spmv(bit16, v)  # fp16 tensor-core operator
    high = lambda v: A.todense().astype(np.float64) @ np.asarray(v, np.float64)

    result = iterative_refinement(
        low, high, jacobi_preconditioner(A), b, tol=1e-12
    )
    err = np.abs(result.x - x_true).max()
    print(
        f"converged={result.converged} after {result.outer_iterations} outer "
        f"corrections ({result.inner_spmv_calls} fp16 SpMVs)"
    )
    print(f"relative residual {result.residual_norm:.2e}, max|x - x*| = {err:.2e}")
    print("-> the fp16 operator did the heavy lifting; accuracy is fp64-level")

    # counterfactual: fp16 residuals stall at the half-precision floor
    stalled = iterative_refinement(
        low, low, jacobi_preconditioner(A), b, tol=1e-12, max_outer=40
    )
    print(
        f"counterfactual (fp16 residuals too): converged={stalled.converged}, "
        f"floor at {stalled.residual_norm:.2e}"
    )


if __name__ == "__main__":
    main()

"""Tour of the sparse-format zoo on a Table-1 analog matrix.

Converts one of the paper's evaluation matrices (synthetic analog)
through every registered format, verifying SpMV equivalence and printing
the memory footprint of each — the survey of §2.1 made concrete.

Run:  python examples/format_tour.py [matrix-name] [scale]
"""

import sys

import numpy as np

from repro.formats import available_formats, convert, format_footprint
from repro.matrices import generate_matrix, matrix_names
from repro.perf.report import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "consph"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.02
    if name not in matrix_names():
        raise SystemExit(f"unknown matrix {name!r}; choose from {matrix_names()}")

    g = generate_matrix(name, scale=scale)
    coo = g.csr.tocoo()
    x = g.dense_vector()
    reference = g.csr.matvec(x)
    print(f"{name} (scale {scale}): {coo.nrows} rows, nnz={coo.nnz}\n")

    rows = []
    for fmt in available_formats():
        if fmt == "dia" and coo.nnz > 0:
            # scattered matrices occupy too many diagonals for DIA
            try:
                m = convert(coo, fmt)
            except Exception as exc:
                rows.append({"format": fmt, "note": f"skipped ({type(exc).__name__})"})
                continue
        else:
            m = convert(coo, fmt)
        y = m.matvec(x)
        agree = np.allclose(y, reference, rtol=1e-3, atol=1e-2)
        report = format_footprint(m)
        rows.append(
            {
                "format": fmt,
                "bytes": report.total_bytes,
                "B/nnz": round(report.bytes_per_nnz, 2),
                "matvec==csr": "yes" if agree else "NO",
            }
        )
    print(format_table(rows, title="memory footprint by format"))
    print("\nbitBSR is the paper's format: bitmap positions + packed fp16 values.")


if __name__ == "__main__":
    main()

"""The §7 extensions: SpMM and SDDMM on the bitBSR block machinery.

Demonstrates a mini GNN-style aggregation: features are aggregated with
SpMM (``H' = A @ H``), then attention-like scores are recomputed on the
sparse pattern with SDDMM (``S = A_pattern ⊙ (H' H'^T)``), the pattern's
bitmap acting as output selector.

Run:  python examples/spmm_sddmm_extension.py
"""

import numpy as np

from repro.core.builder import build_bitbsr
from repro.core.sddmm import spaden_sddmm
from repro.core.spmm import spaden_spmm, spmm_fragment_tiles
from repro.gpu.mma import Precision
from repro.matrices import generate_matrix


def main() -> None:
    g = generate_matrix("scircuit", scale=0.05)  # a circuit graph analog
    bit = g.bitbsr
    n = bit.nrows
    k = 16
    rng = np.random.default_rng(11)
    features = (rng.integers(-8, 9, (n, k)) / 4.0).astype(np.float32)
    print(f"graph: {n} vertices, {bit.nnz} edges, {bit.nblocks} bitBSR blocks")

    # SpMM: one fragment computes 8 output rows x 8 feature columns
    aggregated = spaden_spmm(bit, features)
    ref = np.zeros_like(aggregated)
    rows, cols = bit.entry_coordinates()
    np.add.at(ref, rows, bit.values.astype(np.float32)[:, None] * features[cols])
    print(f"SpMM max error vs reference: {np.abs(aggregated - ref).max():.2e}")
    print(
        f"fragment utilization: SpMV keeps 16/256 results per MMA; "
        f"SpMM with k={k} keeps 128/256 "
        f"({spmm_fragment_tiles(bit, k)} MMA tiles total)"
    )

    # SDDMM: recompute edge scores on the fixed sparsity pattern
    scores = spaden_sddmm(bit, aggregated, aggregated, precision=Precision.FP32)
    dense_scores = aggregated.astype(np.float64) @ aggregated.astype(np.float64).T
    srows, scols = scores.entry_coordinates()
    sampled = scores.values.astype(np.float64)
    exact = dense_scores[srows, scols]
    rel = np.abs(sampled - exact) / np.maximum(1.0, np.abs(exact))
    print(f"SDDMM: {scores.nnz} sampled scores, max rel error {rel.max():.2e}")
    print("pattern preserved:", bool((scores.bitmaps == bit.bitmaps).all()))


if __name__ == "__main__":
    main()

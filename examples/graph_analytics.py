"""Graph analytics on the bitBSR algebra: BFS, SSSP and reachability.

Shows the GraphBLAS-style duality the paper's related work builds on
(§6): one compressed matrix, three graph algorithms, each a semiring
SpMV iteration — plus plain PageRank for good measure.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro.apps.bfs import bfs_levels
from repro.apps.semiring import MIN_PLUS, OR_AND, semiring_spmv, sssp_bellman_ford
from repro.core.builder import build_bitbsr
from repro.core.spmv import spaden_spmv
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.gpu.mma import Precision
from repro.matrices.rmat import rmat_graph


def main() -> None:
    graph = rmat_graph(scale=10, edge_factor=8, seed=42, weighted=True)
    n = graph.nrows
    print(f"R-MAT graph: {n} vertices, {graph.nnz} weighted edges")

    # transpose once: frontier propagation works along edge direction
    at = graph.transpose()
    bit = build_bitbsr(at, value_dtype=np.float32).matrix

    # 1. BFS by arithmetic SpMV + nonzero test
    levels = bfs_levels(
        lambda f: spaden_spmv(bit, f, precision=Precision.FP32), n, source=0
    )
    reached = int((levels >= 0).sum())
    print(f"BFS from 0: reached {reached}/{n} vertices, "
          f"max level {int(levels.max())}")

    # 2. reachability frontier by or-and semiring (one step)
    frontier = np.zeros(n)
    frontier[0] = 1.0
    step = semiring_spmv(bit, frontier, OR_AND)
    print(f"one or-and step: {int(step.sum())} direct successors of vertex 0")

    # 3. single-source shortest paths by min-plus iteration
    distances = sssp_bellman_ford(bit, source=0)
    finite = distances[np.isfinite(distances)]
    print(
        f"SSSP from 0: {finite.size} reachable, "
        f"mean distance {finite.mean():.2f}, max {finite.max():.2f}"
    )

    # 4. sanity: min-plus respects BFS reachability
    assert np.array_equal(np.isfinite(distances), levels >= 0)
    print("reachability agrees between BFS (arithmetic) and SSSP (min-plus)")


if __name__ == "__main__":
    main()

"""Conjugate gradients on a 2-D Poisson problem, SpMV on tensor cores.

Assembles the standard 5-point finite-difference Laplacian (a classic
FEM-adjacent workload like the paper's cant/consph matrices), converts it
to bitBSR and solves ``A u = f`` with CG, with Spaden's SpMV in the inner
loop.  Also demonstrates the mixed-precision effect: the fp16 value path
converges to a correspondingly looser tolerance.

Run:  python examples/cg_poisson.py
"""

import numpy as np

from repro.apps.cg import conjugate_gradient
from repro.core.builder import build_bitbsr
from repro.core.spmv import spaden_spmv
from repro.formats.coo import COOMatrix
from repro.gpu.mma import Precision


def poisson_2d(grid: int) -> COOMatrix:
    """5-point Laplacian on a grid x grid unit square (Dirichlet)."""
    n = grid * grid
    idx = np.arange(n)
    i, j = idx // grid, idx % grid
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 4.0, dtype=np.float32)]
    for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        ni, nj = i + di, j + dj
        ok = (0 <= ni) & (ni < grid) & (0 <= nj) & (nj < grid)
        rows.append(idx[ok])
        cols.append((ni * grid + nj)[ok])
        vals.append(np.full(int(ok.sum()), -1.0, dtype=np.float32))
    return COOMatrix(
        (n, n),
        np.concatenate(rows).astype(np.int32),
        np.concatenate(cols).astype(np.int32),
        np.concatenate(vals),
    )


def main() -> None:
    grid = 48
    A = poisson_2d(grid)
    n = A.nrows
    print(f"2-D Poisson: {grid}x{grid} grid -> {n} unknowns, nnz={A.nnz}")

    rng = np.random.default_rng(3)
    u_true = rng.standard_normal(n)
    f = (A.todense().astype(np.float64) @ u_true).astype(np.float32)

    for precision, tol in ((Precision.FP32, 1e-8), (Precision.FP16, 1e-3)):
        dtype = np.float32 if precision is Precision.FP32 else np.float16
        bit = build_bitbsr(A, value_dtype=dtype).matrix
        result = conjugate_gradient(
            lambda v: spaden_spmv(bit, v, precision=precision),
            f,
            tol=tol,
            max_iterations=5000,
        )
        err = np.abs(result.x - u_true).max()
        print(
            f"{precision.value}: converged={result.converged} "
            f"iters={result.iterations} residual={result.residual_norm:.2e} "
            f"max|u - u*|={err:.2e}"
        )


if __name__ == "__main__":
    main()

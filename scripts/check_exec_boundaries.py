#!/usr/bin/env python
"""Gate: kernel invocations must route through ``repro.exec``.

Walks the AST of every module under ``src/repro`` (so prose in
docstrings and comments never trips the gate) and fails on:

* ``hasattr(obj, "simulate")`` / ``"simulate_many"`` / ``"run"`` /
  ``"run_many"`` anywhere — capability sniffing is what
  ``KernelCapabilities`` replaced;
* direct ``.run(`` / ``.run_many(`` / ``.simulate(`` /
  ``.simulate_many(`` method calls outside ``repro/exec/`` and
  ``repro/kernels/`` — consumer layers call
  :func:`repro.exec.execute` instead;
* any import inside a fenced subtree (:data:`IMPORT_FENCES`) of a repro
  package beyond its allow-list.  The fences keep the passive layers
  passive: observability and resilience are *consulted* by the exec
  seam (never the other way around), and the static analyzers in
  ``repro.analysis`` inspect the serving code at the AST level without
  ever importing it — so an auditor can never perturb, or be perturbed
  by, the code it audits.

AST traversal and import extraction come from
``repro.analysis.astwalk`` — the same helpers the lint and the
concurrency auditor build on, so the three gates walk files one way.

Run from the repo root: ``python scripts/check_exec_boundaries.py``.
Exits 1 with one line per violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
sys.path.insert(0, str(SRC.parent))

from repro.analysis.astwalk import iter_python_files, module_imports, parse_module  # noqa: E402

#: Entry points that must only be invoked from inside the exec layer or
#: by the kernels themselves (base-class fallbacks, shared helpers).
ENTRY_POINTS = {"run", "run_many", "simulate", "simulate_many"}

#: Directories allowed to touch kernel entry points directly.
EXEMPT = ("exec", "kernels")

#: Fenced subtrees: per path prefix under ``src/repro`` (a directory,
#: or a single module without its ``.py``), the repro import prefixes
#: its modules may use beside the stdlib, and why the fence exists.
#: More specific prefixes win over shorter ones.
IMPORT_FENCES = {
    "obs": (
        ("repro.errors", "repro.obs"),
        "observability may only import repro.errors and repro.obs.*; "
        "producers feed it through the middleware seam",
    ),
    "resilience": (
        ("repro.errors", "repro.obs", "repro.resilience"),
        "resilience policies may only import repro.errors, repro.obs and "
        "repro.resilience.*; the exec layer consults them, never vice versa",
    ),
    "persist": (
        ("repro.errors", "repro.obs", "repro.persist"),
        "the on-disk operand store deals only in validated bytes; the "
        "operand codec lives in repro.engine, which consumes the store, "
        "never the other way around",
    ),
    "plan": (
        ("repro.constants", "repro.errors", "repro.obs", "repro.perf", "repro.plan"),
        "the planner consumes structure profiles, the perf cost model and "
        "the metrics registry; it may never import the dispatch layers it "
        "plans for (exec/engine/serve), which consume *it*",
    ),
    "analysis/astwalk": (
        (),
        "the shared AST walker is stdlib-only; every static gate builds on "
        "it and none may drag runtime packages in through it",
    ),
    "analysis/concurrency": (
        ("repro.errors", "repro.analysis.astwalk"),
        "the thread-safety auditor inspects the serving packages at the AST "
        "level and must never import the code it audits",
    ),
}


def _fence_for(rel_module: str):
    """The most specific fence whose prefix covers ``rel_module``."""
    best = None
    for prefix in IMPORT_FENCES:
        if rel_module == prefix or rel_module.startswith(prefix + "/"):
            if best is None or len(prefix) > len(best):
                best = prefix
    return best


def _import_violations(
    path: Path, tree: ast.AST, fence: str, allowed: tuple[str, ...], reason: str
) -> list[str]:
    """Imports that would let a passive layer act instead of being consulted."""
    rel = path.relative_to(SRC.parent.parent)
    found = []
    for name, lineno in module_imports(tree):
        if name == "repro" or name.startswith("repro."):
            if not any(name == p or name.startswith(p + ".") for p in allowed):
                found.append(
                    f"{rel}:{lineno}: repro/{fence} imports {name!r} — {reason}"
                )
    return found


def _violations(path: Path, tree: ast.AST, exempt: bool) -> list[str]:
    rel = path.relative_to(SRC.parent.parent)
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # hasattr(obj, "simulate"-like) — banned everywhere.
        if (
            isinstance(func, ast.Name)
            and func.id == "hasattr"
            and len(node.args) == 2
            and isinstance(node.args[1], ast.Constant)
            and node.args[1].value in ENTRY_POINTS
        ):
            found.append(
                f"{rel}:{node.lineno}: hasattr(..., {node.args[1].value!r}) — "
                f"branch on kernel.capabilities instead"
            )
        # obj.run(...)-like — banned outside the exempt packages.
        if (
            not exempt
            and isinstance(func, ast.Attribute)
            and func.attr in ENTRY_POINTS
        ):
            found.append(
                f"{rel}:{node.lineno}: direct .{func.attr}() call — "
                f"route through repro.exec.execute"
            )
    return found


def main() -> int:
    violations: list[str] = []
    files = iter_python_files([SRC])
    for path in files:
        rel_module = path.relative_to(SRC).with_suffix("").as_posix()
        exempt = path.relative_to(SRC).parts[0] in EXEMPT
        tree, error = parse_module(path.read_text(), str(path))
        if tree is None:
            assert error is not None
            violations.append(
                f"{path.relative_to(SRC.parent.parent)}:{error.lineno or 0}: "
                f"parse error: {error.msg}"
            )
            continue
        violations.extend(_violations(path, tree, exempt))
        fence = _fence_for(rel_module)
        if fence is not None:
            allowed, reason = IMPORT_FENCES[fence]
            violations.extend(_import_violations(path, tree, fence, allowed, reason))
    for line in violations:
        print(line)
    if violations:
        print(f"\n{len(violations)} execution-boundary violation(s)", file=sys.stderr)
        return 1
    print(f"exec boundaries clean across {len(files)} modules")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Gate: kernel invocations must route through ``repro.exec``.

Walks the AST of every module under ``src/repro`` (so prose in
docstrings and comments never trips the gate) and fails on:

* ``hasattr(obj, "simulate")`` / ``"simulate_many"`` / ``"run"`` /
  ``"run_many"`` anywhere — capability sniffing is what
  ``KernelCapabilities`` replaced;
* direct ``.run(`` / ``.run_many(`` / ``.simulate(`` /
  ``.simulate_many(`` method calls outside ``repro/exec/`` and
  ``repro/kernels/`` — consumer layers call
  :func:`repro.exec.execute` instead;
* any import inside ``repro/obs/`` of a repro package other than
  ``repro.errors`` and ``repro.obs`` itself — observability observes
  through the ``repro.exec.middleware`` seam; it must never reach into
  kernels, the simulated GPU, or the engine, so enabling it cannot
  perturb results;
* likewise any import inside ``repro/resilience/`` beyond
  ``repro.errors`` / ``repro.obs`` / ``repro.resilience`` — the
  resilience primitives (deadlines, retry policies, circuit breakers)
  are pure policy objects the exec layer consults; if they could import
  kernels or the engine, installing a policy could change what a
  request computes.

Run from the repo root: ``python scripts/check_exec_boundaries.py``.
Exits 1 with one line per violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Entry points that must only be invoked from inside the exec layer or
#: by the kernels themselves (base-class fallbacks, shared helpers).
ENTRY_POINTS = {"run", "run_many", "simulate", "simulate_many"}

#: Directories allowed to touch kernel entry points directly.
EXEMPT = ("exec", "kernels")

#: Passive packages: per top-level directory, the repro import prefixes
#: its modules may use beside the stdlib, and why the fence exists.
#: Both layers are *consulted* by the exec seam, never the other way
#: around — so enabling them cannot change what a request computes.
IMPORT_FENCES = {
    "obs": (
        ("repro.errors", "repro.obs"),
        "observability may only import repro.errors and repro.obs.*; "
        "producers feed it through the middleware seam",
    ),
    "resilience": (
        ("repro.errors", "repro.obs", "repro.resilience"),
        "resilience policies may only import repro.errors, repro.obs and "
        "repro.resilience.*; the exec layer consults them, never vice versa",
    ),
}


def _import_violations(
    path: Path, tree: ast.AST, package: str, allowed: tuple[str, ...], reason: str
) -> list[str]:
    """Imports that would let a passive layer act instead of being consulted."""
    rel = path.relative_to(SRC.parent.parent)
    found = []
    for node in ast.walk(tree):
        targets: list[str] = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            targets = [node.module]
        for name in targets:
            if name == "repro" or name.startswith("repro."):
                if not any(name == p or name.startswith(p + ".") for p in allowed):
                    found.append(
                        f"{rel}:{node.lineno}: repro.{package} imports {name!r} — "
                        f"{reason}"
                    )
    return found


def _violations(path: Path, tree: ast.AST, exempt: bool) -> list[str]:
    rel = path.relative_to(SRC.parent.parent)
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # hasattr(obj, "simulate"-like) — banned everywhere.
        if (
            isinstance(func, ast.Name)
            and func.id == "hasattr"
            and len(node.args) == 2
            and isinstance(node.args[1], ast.Constant)
            and node.args[1].value in ENTRY_POINTS
        ):
            found.append(
                f"{rel}:{node.lineno}: hasattr(..., {node.args[1].value!r}) — "
                f"branch on kernel.capabilities instead"
            )
        # obj.run(...)-like — banned outside the exempt packages.
        if (
            not exempt
            and isinstance(func, ast.Attribute)
            and func.attr in ENTRY_POINTS
        ):
            found.append(
                f"{rel}:{node.lineno}: direct .{func.attr}() call — "
                f"route through repro.exec.execute"
            )
    return found


def main() -> int:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        top = path.relative_to(SRC).parts[0]
        exempt = top in EXEMPT
        tree = ast.parse(path.read_text(), filename=str(path))
        violations.extend(_violations(path, tree, exempt))
        if top in IMPORT_FENCES:
            allowed, reason = IMPORT_FENCES[top]
            violations.extend(_import_violations(path, tree, top, allowed, reason))
    for line in violations:
        print(line)
    if violations:
        print(f"\n{len(violations)} execution-boundary violation(s)", file=sys.stderr)
        return 1
    print(f"exec boundaries clean across {sum(1 for _ in SRC.rglob('*.py'))} modules")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

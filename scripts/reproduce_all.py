"""One-shot reproduction driver.

Runs the complete pipeline — probe, dataset, every table/figure, the
ablations — and writes a summary to stdout.  Equivalent to the benchmark
suite but as a plain script with no pytest dependency, for quick
inspection of the reproduction on a fresh machine.

Usage::

    python scripts/reproduce_all.py [scale]
"""

from __future__ import annotations

import sys
import time


def main(scale: float) -> None:
    t0 = time.time()
    print(f"=== Spaden reproduction, scale={scale} ===\n")

    # §3: the reverse-engineering probe
    from repro.core.reverse_engineering import probe_fragment_layout
    from repro.gpu.fragment import FragmentKind

    layout = probe_fragment_layout(FragmentKind.ACCUMULATOR)
    print(f"[§3] probe: portion registers {layout.portion_registers}")
    assert layout.portion_registers[0] == (0, 1)
    assert layout.portion_registers[3] == (6, 7)

    # Table 1
    from repro.matrices import generate_matrix, in_scope_names, matrix_names
    from repro.perf.report import format_table

    suite = {}
    rows = []
    for name in matrix_names():
        g = generate_matrix(name, scale=scale)
        suite[name] = g
        rows.append(
            {"Matrix": name, "nnz": g.nnz, "Bnnz": g.block_nnz,
             "nnz/blk": round(g.nnz / g.block_nnz, 1)}
        )
    print("\n" + format_table(rows, title="[Table 1] dataset analogs"))

    # Figures 6/7
    from repro.bench import EVALUATED_METHODS, modeled_times, profile_suite
    from repro.kernels import get_kernel
    from repro.perf.metrics import gflops, speedup_table

    in_scope = {n: suite[n] for n in in_scope_names()}
    profiles = profile_suite(in_scope, EVALUATED_METHODS, scale)
    for gpu in ("L40", "V100"):
        times = modeled_times(profiles, gpu)
        geo = speedup_table(times, "spaden")
        summary = ", ".join(
            f"{get_kernel(m).label} {geo[m]:.2f}x" for m in EVALUATED_METHODS[1:]
        )
        print(f"\n[Fig 6/7] {gpu}: Spaden geomean speedups: {summary}")

    # Figure 8
    from repro.bench import FIG8_METHODS

    fig8 = profile_suite(in_scope, FIG8_METHODS, scale)
    times = modeled_times(fig8, "L40")
    geo = speedup_table(times, "spaden")
    print(
        f"[Fig 8] L40 breakdown: w/o TC {geo['spaden-no-tc']:.2f}x, "
        f"BSR {geo['cusparse-bsr']:.2f}x, Warp16 {geo['csr-warp16']:.2f}x"
    )

    # Figure 9
    from repro.core.analysis import categorize_blocks

    landmark = {n: categorize_blocks(suite[n].bitbsr) for n in ("raefsky3", "Ga41As41H72")}
    print(
        f"[Fig 9a] raefsky3 dense ratio {landmark['raefsky3'].dense_ratio:.2f}, "
        f"Ga41As41H72 sparse ratio {landmark['Ga41As41H72'].sparse_ratio:.2f}"
    )

    # Figure 10
    from repro.perf.metrics import geomean

    mems, preps = {}, {}
    for m in ("spaden", "cusparse-csr", "cusparse-bsr", "dasp"):
        kernel = get_kernel(m)
        ops = [kernel.prepare(suite[n].csr) for n in in_scope_names()]
        mems[m] = geomean([o.bytes_per_nnz for o in ops])
        preps[m] = geomean([o.preprocessing_ns_per_nnz for o in ops])
    print(
        f"[Fig 10b] B/nnz: Spaden {mems['spaden']:.2f}, CSR {mems['cusparse-csr']:.2f}, "
        f"BSR {mems['cusparse-bsr']:.2f}, DASP {mems['dasp']:.2f} "
        f"(saving over CSR: {mems['cusparse-csr'] / mems['spaden']:.2f}x)"
    )
    print(
        f"[Fig 10a] prep ns/nnz: BSR {preps['cusparse-bsr']:.2f} < "
        f"Spaden {preps['spaden']:.2f} < DASP {preps['dasp']:.2f}"
    )

    if scale < 0.3:
        print(
            f"\nNOTE: at scale {scale} the runtime shapes are compressed by "
            "launch/occupancy floors (exactly as small matrices behave on "
            "real GPUs).  Structure results (Table 1, Fig 9a, Fig 10) are "
            "scale-invariant; run with scale 1.0 — or see "
            "benchmarks/results_fullscale/ — for the paper-comparable "
            "speedup figures."
        )
    print(f"\ndone in {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)

"""Calibration helper: compute all kernel profiles once, then evaluate
the roofline model's aggregate speedups against the paper's targets.

Usage::

    python scripts/calibrate.py collect [scale]   # pickle profiles
    python scripts/calibrate.py evaluate          # print geomeans vs paper
"""

from __future__ import annotations

import pickle
import sys
import time
from pathlib import Path

CACHE = Path("/tmp/repro_profiles.pkl")

METHODS = [
    "spaden",
    "cusparse-csr",
    "cusparse-bsr",
    "lightspmv",
    "gunrock",
    "dasp",
    "spaden-no-tc",
    "csr-warp16",
]

PAPER = {
    "L40": {"cusparse-csr": 1.63, "cusparse-bsr": 3.37, "lightspmv": 2.68, "gunrock": 2.82, "dasp": 2.32,
            "spaden-no-tc": 1.47, "csr-warp16": 23.18},
    "V100": {"cusparse-csr": 1.30, "cusparse-bsr": 2.21, "lightspmv": 1.86, "gunrock": 2.58, "dasp": 1.20},
}


def collect(scale: float) -> None:
    from repro.kernels import get_kernel
    from repro.matrices import generate_matrix, in_scope_names

    out = {}
    for name in in_scope_names():
        t0 = time.time()
        g = generate_matrix(name, scale=scale)
        x = g.dense_vector()
        csr = g.csr
        out[name] = {"nnz": csr.nnz}
        for m in METHODS:
            k = get_kernel(m)
            prep = k.prepare(csr)
            out[name][m] = k.profile(prep, x)
        print(f"{name}: {time.time() - t0:.1f}s", flush=True)
    CACHE.write_bytes(pickle.dumps({"scale": scale, "profiles": out}))
    print(f"cached -> {CACHE}")


def evaluate() -> None:
    from repro.gpu.spec import get_gpu
    from repro.perf import estimate_time
    from repro.perf.metrics import gflops, speedup_table

    data = pickle.loads(CACHE.read_bytes())
    profiles = data["profiles"]
    print(f"(profiles at scale {data['scale']})")
    for gpu_name in ("L40", "V100"):
        gpu = get_gpu(gpu_name)
        times = {}
        for mat, entry in profiles.items():
            times[mat] = {m: estimate_time(entry[m], gpu).total for m in METHODS}
        su = speedup_table(times, "spaden")
        print(f"-- {gpu_name}")
        for m in METHODS[1:]:
            target = PAPER[gpu_name].get(m)
            tgt = f"(paper {target:.2f})" if target else ""
            print(f"   {m:14s} {su[m]:6.2f} {tgt}")
        if gpu_name == "L40":
            print("   per-matrix GFLOPS (spaden / csr / bsr):")
            for mat, entry in profiles.items():
                t = times[mat]
                print(
                    f"     {mat:12s} {gflops(entry['nnz'], t['spaden']):7.1f} "
                    f"{gflops(entry['nnz'], t['cusparse-csr']):7.1f} "
                    f"{gflops(entry['nnz'], t['cusparse-bsr']):7.1f}  "
                    f"bsr/spaden={t['cusparse-bsr'] / t['spaden']:5.2f} "
                    f"bound={estimate_time(entry['spaden'], gpu).bound}"
                )


if __name__ == "__main__":
    cmd = sys.argv[1] if len(sys.argv) > 1 else "evaluate"
    if cmd == "collect":
        collect(float(sys.argv[2]) if len(sys.argv) > 2 else 0.2)
    else:
        evaluate()

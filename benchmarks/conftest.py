"""Session-scoped fixtures shared by all table/figure benchmarks."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import bench_scale, load_suite, prune_bench_cache

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _healthy_bench_cache():
    """Evict corrupt or old-build cache entries before any profiling runs."""
    removed = prune_bench_cache()
    if removed:
        print(f"\n[bench cache: pruned {removed} stale/corrupt entries]")
    yield


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def suite(scale):
    """The 12 in-scope Table-1 analogs at the configured scale."""
    return load_suite(scale)


@pytest.fixture(scope="session")
def full_suite(scale):
    """All 14 matrices, including the two out-of-scope low-degree ones."""
    from repro.matrices import matrix_names

    return load_suite(scale, names=matrix_names())


def write_result(name: str, text: str) -> Path:
    """Persist one reproduced table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path

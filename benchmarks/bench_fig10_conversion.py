"""Figure 10 — preprocessing time and memory cost of format conversion.

(a) modeled conversion time per nnz (paper: BSR 1.21 ns, Spaden 3.31 ns,
    DASP 4.95 ns; cuSPARSE CSR's buffer setup shown for reference);
(b) resident memory per nnz (paper: Spaden 2.85 B, CSR 8.06 B,
    DASP 12.25 B, BSR 13.63 B -> savings 2.83x / 4.32x / 4.70x).
"""

import pytest

from repro.kernels import get_kernel
from repro.perf.metrics import geomean
from repro.perf.report import format_table

from benchmarks.conftest import write_result

METHODS = ("cusparse-csr", "cusparse-bsr", "spaden", "dasp")
PAPER_BYTES = {"cusparse-csr": 8.06, "cusparse-bsr": 13.63, "spaden": 2.85, "dasp": 12.25}
PAPER_NS = {"cusparse-bsr": 1.21, "spaden": 3.31, "dasp": 4.95}


@pytest.fixture(scope="module")
def prepared(suite):
    out = {}
    for name, g in suite.items():
        out[name] = {m: get_kernel(m).prepare(g.csr) for m in METHODS}
    return out


def test_fig10a_preprocessing_time(benchmark, prepared, scale):
    rows = []
    for name, per_method in prepared.items():
        row = {"Matrix": name}
        for m in METHODS:
            row[get_kernel(m).label + " ns/nnz"] = round(per_method[m].preprocessing_ns_per_nnz, 2)
        rows.append(row)
    table = format_table(rows, title=f"Figure 10a — modeled conversion cost (scale={scale})")
    write_result("fig10a_preprocessing.txt", table)

    means = {
        m: geomean([per[m].preprocessing_ns_per_nnz for per in prepared.values()])
        for m in METHODS
    }
    # ordering: CSR reference < BSR < Spaden < DASP (paper Fig. 10a)
    assert means["cusparse-bsr"] < means["spaden"] < means["dasp"]
    for m, paper in PAPER_NS.items():
        assert 0.3 < means[m] / paper < 3.0, (m, means[m], paper)

    benchmark(
        lambda: {
            m: geomean([per[m].preprocessing_ns_per_nnz for per in prepared.values()])
            for m in METHODS
        }
    )


def test_fig10a_wallclock_conversion(benchmark, suite):
    """Actual host conversion wall time for the record."""
    g = suite["shipsec1"]
    kernel = get_kernel("spaden")
    prep = benchmark(lambda: kernel.prepare(g.csr))
    assert prep.host_seconds >= 0


def test_fig10b_memory(benchmark, prepared, scale):
    rows = []
    for name, per_method in prepared.items():
        row = {"Matrix": name}
        for m in METHODS:
            row[get_kernel(m).label + " B/nnz"] = round(per_method[m].bytes_per_nnz, 2)
        rows.append(row)
    table = format_table(rows, title=f"Figure 10b — memory per nonzero (scale={scale})")
    write_result("fig10b_memory.txt", table)

    means = {m: geomean([per[m].bytes_per_nnz for per in prepared.values()]) for m in METHODS}
    savings_rows = [
        {
            "vs": get_kernel(m).label,
            "paper B/nnz": PAPER_BYTES[m],
            "modeled B/nnz": round(means[m], 2),
            "saving over": round(means[m] / means["spaden"], 2),
        }
        for m in METHODS
    ]
    table2 = format_table(savings_rows, title="Figure 10b — Spaden memory savings (paper: 2.83x CSR, 4.70x BSR, 4.32x DASP)")
    write_result("fig10b_savings.txt", table2)

    # orderings and magnitudes
    assert means["spaden"] < means["cusparse-csr"] < means["dasp"] < means["cusparse-bsr"]
    for m, paper in PAPER_BYTES.items():
        assert 0.6 < means[m] / paper < 1.6, (m, means[m], paper)

    benchmark(lambda: {m: per[m].bytes_per_nnz for per in prepared.values() for m in METHODS})

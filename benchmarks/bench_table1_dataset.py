"""Table 1 — matrix dataset information (nrow, nnz, Bnrow, Bnnz).

Regenerates the paper's dataset table from the synthetic analogs and
benchmarks the CSR -> bitBSR conversion that produces the B-columns.
"""

import pytest

from repro.core.builder import build_bitbsr
from repro.matrices import get_spec, matrix_names
from repro.perf.report import format_table

from benchmarks.conftest import write_result


def test_table1_rows(benchmark, full_suite, scale):
    """Print Table 1 (scaled); verify every analog matches its targets."""
    rows = []
    for name in matrix_names():
        g = full_suite[name]
        spec = get_spec(name)
        rows.append(
            {
                "Matrix": name,
                "nrow": g.nrows,
                "nnz": g.nnz,
                "Bnrow": g.bitbsr.block_rows_count,
                "Bnnz": g.block_nnz,
                "paper nnz (scaled)": int(spec.nnz * scale),
                "paper Bnnz (scaled)": int(spec.block_nnz * scale),
            }
        )
        assert abs(g.nnz - spec.nnz * scale) <= max(64, 0.03 * spec.nnz * scale)
        assert abs(g.block_nnz - spec.block_nnz * scale) <= max(8, 0.03 * spec.block_nnz * scale)

    table = format_table(rows, title=f"Table 1 (scale={scale})")
    write_result("table1_dataset.txt", table)

    # benchmark the conversion pipeline behind the Bnrow/Bnnz columns
    sample = full_suite["consph"].csr
    report = benchmark(lambda: build_bitbsr(sample))
    assert report.block_nnz == full_suite["consph"].block_nnz


def test_conversion_is_deterministic(benchmark, full_suite):
    g = full_suite["cant"]
    first = build_bitbsr(g.csr).matrix
    second = benchmark(lambda: build_bitbsr(g.csr).matrix)
    assert (first.bitmaps == second.bitmaps).all()

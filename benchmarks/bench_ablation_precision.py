"""Precision ablation — the §2.2 mixed-precision claim, quantified.

Measures SpMV error of the FP16 / TF32 / FP32 tensor-core modes against a
float64 reference on a Table-1 analog, for both half-exact and general
values.
"""

import numpy as np
import pytest

from repro.core.precision import precision_study
from repro.gpu.mma import Precision
from repro.perf.report import format_table

from benchmarks.conftest import write_result


def test_precision_ladder(benchmark, suite, scale):
    g = suite["rma10"]
    coo = g.csr.tocoo()
    x = g.dense_vector()
    reports = benchmark(lambda: precision_study(coo, x))
    rows = [
        {
            "mode": r.precision.value,
            "max rel error": f"{r.max_rel_error:.2e}",
            "rms error": f"{r.rms_error:.2e}",
            "equiv. bits": round(r.equivalent_bits, 1),
        }
        for r in reports
    ]
    table = format_table(rows, title=f"Ablation — precision modes on rma10 (fp16-exact values, scale={scale})")
    write_result("ablation_precision.txt", table)

    by_mode = {r.precision: r for r in reports}
    # the paper's claim holds in its setting: fp16 storage loses nothing
    assert by_mode[Precision.FP16].max_rel_error < 1e-4
    assert by_mode[Precision.FP32].max_rel_error <= by_mode[Precision.FP16].max_rel_error + 1e-12


def test_precision_with_general_values(benchmark, suite, scale):
    """Non-representable values: the ladder orders FP32 < TF32 < FP16."""
    g = suite["raefsky3"]
    coo = g.csr.tocoo()
    rng = np.random.default_rng(5)
    from repro.formats.coo import COOMatrix

    general = COOMatrix(
        coo.shape, coo.rows.copy(), coo.cols.copy(),
        rng.standard_normal(coo.nnz).astype(np.float32),
    )
    x = rng.standard_normal(coo.ncols).astype(np.float32)
    reports = benchmark(lambda: precision_study(general, x))
    errs = {r.precision: r.max_rel_error for r in reports}
    assert errs[Precision.FP32] <= errs[Precision.TF32] <= errs[Precision.FP16]
    rows = [{"mode": p.value, "max rel error": f"{e:.2e}"} for p, e in errs.items()]
    write_result(
        "ablation_precision_general.txt",
        format_table(rows, title="Ablation — precision modes, general (non-fp16-exact) values"),
    )

"""The selection-criteria experiment (§5.2's low-degree discussion).

The paper: on scircuit and webbase-1M (nnz/nrow < 6) "all SpMV
algorithms exhibit remarkably low throughput" and Spaden "achieves only
41% of the throughput of cuSPARSE CSR" because most fragment slots carry
zeros.  This bench reproduces the scope boundary: Spaden loses on the
two out-of-scope matrices and wins on the in-scope suite.
"""

import pytest

from repro.bench import load_suite, modeled_times, profile_suite
from repro.perf.metrics import gflops
from repro.perf.report import format_table

from benchmarks.conftest import write_result

METHODS = ("spaden", "cusparse-csr")


@pytest.fixture(scope="module")
def scope_profiles(scale):
    suite = load_suite(scale, names=["scircuit", "webbase1M", "consph", "pwtk"])
    return suite, profile_suite(suite, METHODS, scale)


def test_out_of_scope_matrices_favor_csr(benchmark, scope_profiles, scale):
    suite, profiles = scope_profiles
    times = benchmark(lambda: modeled_times(profiles, "L40"))
    rows = []
    for name in ("scircuit", "webbase1M", "consph", "pwtk"):
        t = times[name]
        nnz = suite[name].nnz
        ratio = t["cusparse-csr"] / t["spaden"]
        rows.append(
            {
                "Matrix": name,
                "nnz/nrow": round(suite[name].nnz / suite[name].nrows, 1),
                "Spaden GFLOPS": round(gflops(nnz, t["spaden"]), 1),
                "CSR GFLOPS": round(gflops(nnz, t["cusparse-csr"]), 1),
                "Spaden/CSR": round(ratio, 2),
                "in scope": "no" if name in ("scircuit", "webbase1M") else "yes",
            }
        )
    table = format_table(rows, title=f"Scope criteria (paper: Spaden at 41% of CSR off-scope), scale={scale}")
    write_result("scope_criteria.txt", table)

    by_name = {r["Matrix"]: r["Spaden/CSR"] for r in rows}
    # the paper's boundary: Spaden loses clearly on the low-degree pair
    assert by_name["scircuit"] < 0.85
    assert by_name["webbase1M"] < 0.85
    # and wins (or at least matches) inside its scope
    assert by_name["consph"] > 0.95
    assert by_name["pwtk"] > 0.95


def test_low_degree_blocks_are_mostly_zero_slots(benchmark, scope_profiles):
    """Why it loses: < 10% of fragment slots carry true nonzeros."""
    suite, _ = scope_profiles
    from repro.core.analysis import categorize_blocks

    profile = benchmark(lambda: categorize_blocks(suite["webbase1M"].bitbsr))
    assert profile.fill_ratio < 0.15
    assert profile.sparse_ratio > 0.95

"""Figure 9 — impact of matrix structure.

(a) per-matrix ratio of sparse (<=32) / medium (33-48) / dense (>48)
    blocks;
(b) correlation between the sparse-block ratio and Spaden's speedup over
    cuSPARSE BSR (paper: BSR wins on the dense-block raefsky3/TSOPF by
    1.2-1.5x; Spaden wins by 4.0-4.2x on Si41Ge41H72/Ga41As41H72).
"""

import numpy as np
import pytest

from repro.bench import modeled_times, profile_suite
from repro.core.analysis import categorize_blocks
from repro.perf.report import format_table

from benchmarks.conftest import write_result


@pytest.fixture(scope="module")
def profiles(suite, scale):
    return profile_suite(suite, ("spaden", "cusparse-bsr"), scale)


def test_fig9a_block_ratios(benchmark, suite, scale):
    profiles_by_matrix = benchmark(
        lambda: {name: categorize_blocks(g.bitbsr) for name, g in suite.items()}
    )
    rows = [
        {
            "Matrix": name,
            "sparse": round(p.sparse_ratio, 2),
            "medium": round(p.medium_ratio, 2),
            "dense": round(p.dense_ratio, 2),
            "mean nnz/block": round(p.mean_block_nnz, 1),
        }
        for name, p in profiles_by_matrix.items()
    ]
    table = format_table(rows, title=f"Figure 9a — block category ratios (scale={scale})")
    write_result("fig9a_block_ratios.txt", table)

    # the paper's landmarks
    assert profiles_by_matrix["raefsky3"].dense_ratio > 0.9
    assert profiles_by_matrix["TSOPF"].dense_ratio > 0.6
    assert profiles_by_matrix["Si41Ge41H72"].sparse_ratio > 0.9
    assert 0.25 < profiles_by_matrix["pwtk"].sparse_ratio < 0.45  # even split


def test_fig9b_speedup_vs_sparsity(benchmark, suite, profiles, scale):
    """Speedup over BSR grows with the sparse-block ratio."""
    times = benchmark(lambda: modeled_times(profiles, "L40"))
    entries = []
    for name, g in suite.items():
        ratio = categorize_blocks(g.bitbsr).sparse_ratio
        speedup = times[name]["cusparse-bsr"] / times[name]["spaden"]
        entries.append((ratio, speedup, name))
    entries.sort()
    rows = [
        {"Matrix": name, "sparse ratio": round(r, 2), "speedup over BSR": round(s, 2)}
        for r, s, name in entries
    ]
    table = format_table(rows, title=f"Figure 9b — Spaden over BSR vs sparse-block ratio (scale={scale})")
    write_result("fig9b_speedup_vs_sparsity.txt", table)

    ratios = np.array([e[0] for e in entries])
    speedups = np.array([e[1] for e in entries])
    corr = float(np.corrcoef(ratios, np.log(speedups))[0, 1])
    # below ~1/3 scale the small matrices are genuinely launch/occupancy
    # bound (as they would be on real hardware), which compresses the
    # correlation; the full-size run shows the paper's strong trend
    min_corr = 0.6 if scale >= 0.3 else 0.35
    assert corr > min_corr, f"speedup should rise with sparse-block ratio (corr={corr:.2f})"

    by_name = {name: s for _, s, name in entries}
    # sparse-block chemistry matrices: Spaden wins big (paper 4.0-4.2x)
    chem_floor = 2.0 if scale >= 0.3 else 1.4
    assert by_name["Si41Ge41H72"] > chem_floor
    assert by_name["Ga41As41H72"] > chem_floor
    # dense-block matrices: BSR is competitive (paper: BSR wins 1.2-1.5x)
    assert by_name["raefsky3"] < 1.6
    assert by_name["TSOPF"] < 1.6

"""Figure 7 — speedup of every method over cuSPARSE CSR, plus the
paper's headline geomean speedups of Spaden over each competitor.

Paper values (geomean over the 12 in-scope matrices):
  L40 : 1.63x CSR, 3.37x BSR, 2.68x LightSpMV, 2.82x Gunrock, 2.32x DASP
  V100: 1.30x CSR, 2.21x BSR, 1.86x LightSpMV, 2.58x Gunrock, 1.20x DASP
"""

import pytest

from repro.bench import EVALUATED_METHODS, modeled_times, profile_suite
from repro.kernels import get_kernel
from repro.perf.metrics import speedup_table
from repro.perf.report import format_table

from benchmarks.conftest import write_result

PAPER_GEOMEANS = {
    "L40": {"cusparse-csr": 1.63, "cusparse-bsr": 3.37, "lightspmv": 2.68, "gunrock": 2.82, "dasp": 2.32},
    "V100": {"cusparse-csr": 1.30, "cusparse-bsr": 2.21, "lightspmv": 1.86, "gunrock": 2.58, "dasp": 1.20},
}


@pytest.fixture(scope="module")
def profiles(suite, scale):
    return profile_suite(suite, EVALUATED_METHODS, scale)


@pytest.mark.parametrize("gpu_name", ["L40", "V100"])
def test_fig7_speedup_over_csr(benchmark, profiles, gpu_name, scale):
    """Per-matrix speedup of each method over cuSPARSE CSR."""
    times = modeled_times(profiles, gpu_name)
    rows = []
    for name, per_method in times.items():
        base = per_method["cusparse-csr"]
        row = {"Matrix": name}
        for method in EVALUATED_METHODS:
            if method != "cusparse-csr":
                row[get_kernel(method).label] = round(base / per_method[method], 2)
        rows.append(row)
    table = format_table(rows, title=f"Figure 7 — speedup over cuSPARSE CSR, {gpu_name} (scale={scale})")
    write_result(f"fig7_speedup_{gpu_name}.txt", table)
    benchmark(lambda: modeled_times(profiles, gpu_name))


@pytest.mark.parametrize("gpu_name", ["L40", "V100"])
def test_headline_geomeans(benchmark, profiles, gpu_name, scale):
    """Spaden's geomean speedup over every competitor vs the paper's."""
    times = benchmark(lambda: modeled_times(profiles, gpu_name))
    geomeans = speedup_table(times, "spaden")
    rows = []
    for method, paper in PAPER_GEOMEANS[gpu_name].items():
        ours = geomeans[method]
        rows.append(
            {
                "vs method": get_kernel(method).label,
                "paper": paper,
                "modeled": round(ours, 2),
                "ratio": round(ours / paper, 2),
            }
        )
    table = format_table(
        rows, title=f"Spaden geomean speedups, {gpu_name} (scale={scale}) — paper vs modeled"
    )
    write_result(f"fig7_geomeans_{gpu_name}.txt", table)

    # the reproduction bar: Spaden wins against every method, and the
    # factors stay within ~2x of the paper's (model resolution).  Below
    # ~1/3 scale, launch overhead compresses the closest race (DASP on
    # its home V100 architecture, paper 1.20x) toward parity.
    for method, paper in PAPER_GEOMEANS[gpu_name].items():
        ours = geomeans[method]
        floor = 1.0 if (scale >= 0.3 or paper > 1.5) else 0.9
        assert ours > floor, f"Spaden should beat {method} on {gpu_name} ({ours:.2f})"
        assert 0.4 < ours / paper < 2.6, (method, gpu_name, ours, paper)

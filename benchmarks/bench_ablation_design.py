"""Design-choice ablations called out in DESIGN.md (beyond the paper's
figures).

1. Block size: why 8x8 (one 64-bit bitmap, two blocks per fragment) is
   the sweet spot (§4.2's three-factor argument, quantified).
2. Register-level direct access vs the conventional WMMA shared-memory
   path (§3's motivation, quantified as staged bytes).
3. SpMM fragment utilization: the §7 extension's payoff.
"""

import numpy as np
import pytest

from repro.core.ablation import block_size_ablation
from repro.core.spmm import spmm_fragment_tiles
from repro.gpu.counters import ExecutionStats
from repro.gpu.fragment import Fragment, FragmentKind
from repro.gpu.memory import GlobalMemory
from repro.gpu.wmma import load_matrix_sync
from repro.perf.report import format_table

from benchmarks.conftest import write_result


def test_ablation_block_size(benchmark, suite, scale):
    g = suite["consph"]
    coo = g.csr.tocoo()
    points = benchmark(lambda: block_size_ablation(coo, block_dims=(2, 4, 8, 16)))
    rows = [
        {
            "block": f"{p.block_dim}x{p.block_dim}",
            "bitmap bits": p.bitmap_bits,
            "native int": "yes" if p.native_bitmap else "NO",
            "blocks": p.nblocks,
            "fill": round(p.fill_ratio, 3),
            "B/nnz": round(p.bytes_per_nnz, 2),
        }
        for p in points
    ]
    table = format_table(rows, title=f"Ablation — bitmap block size on consph (scale={scale})")
    write_result("ablation_block_size.txt", table)

    by_dim = {p.block_dim: p for p in points}
    # the paper's argument: 8 is the largest native size, and it beats
    # the smaller native sizes on metadata overhead for blocky matrices
    assert by_dim[8].native_bitmap and not by_dim[16].native_bitmap
    assert by_dim[8].bytes_per_nnz < by_dim[2].bytes_per_nnz


def test_ablation_wmma_vs_direct_access(benchmark):
    """Quantify §3: the conventional WMMA load stages all 256 elements
    through shared memory; Spaden's register writes move only the
    nonzeros and skip shared memory entirely."""

    def conventional():
        mem = GlobalMemory()
        mem.register("tile", np.zeros(256, dtype=np.float32))
        frag = Fragment(FragmentKind.MATRIX_A)
        load_matrix_sync(frag, mem, "tile", 0, 16)
        return mem.stats

    stats = benchmark(conventional)
    direct = ExecutionStats()  # Spaden's path: zero shared-memory traffic
    rows = [
        {
            "path": "wmma::load (conventional)",
            "global bytes": stats.global_load_bytes,
            "shared bytes": stats.shared_bytes,
        },
        {
            "path": "register writes (Spaden, k=20 nnz)",
            "global bytes": 20 * 2,
            "shared bytes": direct.shared_bytes,
        },
    ]
    table = format_table(rows, title="Ablation — conventional WMMA vs direct register access (one 16x16 tile)")
    write_result("ablation_wmma_direct.txt", table)
    assert stats.shared_bytes == 2 * 256 * 4
    assert stats.global_load_bytes == 256 * 4


def test_ablation_register_access_speedup(benchmark, suite, scale):
    """Modeled end-to-end cost of Spaden with vs without the §3 insight:
    the direct-register variant vs the conventional-WMMA variant."""
    from repro.gpu.spec import get_gpu
    from repro.kernels import get_kernel
    from repro.perf import estimate_time

    rows = []
    speedups = []
    for name in ("consph", "pwtk", "Si41Ge41H72"):
        g = suite[name]
        x = g.dense_vector()
        times = {}
        for method in ("spaden", "spaden-wmma"):
            kernel = get_kernel(method)
            prep = kernel.prepare(g.csr)
            profile = kernel.profile(prep, x)
            times[method] = estimate_time(profile, get_gpu("L40")).total
        speedup = times["spaden-wmma"] / times["spaden"]
        speedups.append(speedup)
        rows.append(
            {
                "Matrix": name,
                "direct us": round(times["spaden"] * 1e6, 1),
                "WMMA-path us": round(times["spaden-wmma"] * 1e6, 1),
                "speedup from direct access": round(speedup, 2),
            }
        )
    table = format_table(rows, title=f"Ablation — §3 direct register access vs conventional WMMA (L40, scale={scale})")
    write_result("ablation_register_access.txt", table)
    assert all(s >= 1.0 for s in speedups)
    assert max(s for s in speedups) > 1.1  # the staging overhead is visible
    benchmark(lambda: sum(speedups))


def test_ablation_spmm_utilization(benchmark, suite, scale):
    """SpMV keeps 16 of 256 fragment results; SpMM keeps all of them."""
    g = suite["cant"]
    bit = g.bitbsr
    tiles_spmv = benchmark(lambda: spmm_fragment_tiles(bit, 1))
    rows = []
    for k in (1, 8, 32, 128):
        tiles = spmm_fragment_tiles(bit, k)
        useful = 16 * min(k, 8) * (tiles_spmv / tiles) if tiles else 0
        rows.append(
            {
                "k (dense cols)": k,
                "MMA tiles": tiles,
                "useful results/MMA": 16 * min(k, 8),
            }
        )
    table = format_table(rows, title=f"Ablation — SpMM fragment utilization on cant (scale={scale})")
    write_result("ablation_spmm_utilization.txt", table)
    assert spmm_fragment_tiles(bit, 8) == tiles_spmv  # same tiles, 8x output

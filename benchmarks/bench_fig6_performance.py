"""Figure 6 — SpMV throughput (GFLOPS) of six methods on L40 and V100.

Prints one series per GPU: per-matrix modeled GFLOPS for Spaden,
cuSPARSE CSR/BSR, LightSpMV, Gunrock and DASP.  Also wall-clock-
benchmarks the vectorized kernels themselves via pytest-benchmark.
"""

import pytest

from repro.bench import EVALUATED_METHODS, modeled_times, profile_suite
from repro.kernels import get_kernel
from repro.perf.metrics import gflops
from repro.perf.report import format_table

from benchmarks.conftest import write_result


@pytest.fixture(scope="module")
def profiles(suite, scale):
    return profile_suite(suite, EVALUATED_METHODS, scale)


@pytest.mark.parametrize("gpu_name", ["L40", "V100"])
def test_fig6_gflops_series(benchmark, profiles, suite, gpu_name, scale):
    times = modeled_times(profiles, gpu_name)
    rows = []
    for name, per_method in times.items():
        nnz = suite[name].nnz
        row = {"Matrix": name}
        for method in EVALUATED_METHODS:
            row[get_kernel(method).label] = round(gflops(nnz, per_method[method]), 1)
        rows.append(row)
    table = format_table(rows, title=f"Figure 6 — modeled GFLOPS on {gpu_name} (scale={scale})")
    write_result(f"fig6_performance_{gpu_name}.txt", table)

    # sanity: Spaden leads on the sparse-block chemistry matrices
    for name in ("Si41Ge41H72", "Ga41As41H72"):
        t = times[name]
        assert t["spaden"] < t["cusparse-bsr"], name
        assert t["spaden"] < t["gunrock"], name

    benchmark(lambda: modeled_times(profiles, gpu_name))


@pytest.mark.parametrize("method", EVALUATED_METHODS)
def test_wallclock_spmv(benchmark, suite, method):
    """Wall-clock time of the vectorized numeric kernels (pwtk analog)."""
    g = suite["pwtk"]
    kernel = get_kernel(method)
    prepared = kernel.prepare(g.csr)
    x = g.dense_vector()
    y = benchmark(lambda: kernel.run(prepared, x))
    assert y.shape == (g.nrows,)

"""Figure 8 — speedup breakdown of Spaden on L40.

Paper (geomean over the 12 in-scope matrices): Spaden is 1.47x faster
than Spaden w/o TC, 3.37x than cuSPARSE BSR and 23.18x than CSR Warp16.
The decomposition isolates (1) coalesced block access, (2) bitmap
compression and (3) the tensor cores themselves.
"""

import pytest

from repro.bench import FIG8_METHODS, modeled_times, profile_suite
from repro.kernels import get_kernel
from repro.perf.metrics import speedup_table
from repro.perf.report import format_table

from benchmarks.conftest import write_result

PAPER = {"spaden-no-tc": 1.47, "cusparse-bsr": 3.37, "csr-warp16": 23.18}


@pytest.fixture(scope="module")
def profiles(suite, scale):
    return profile_suite(suite, FIG8_METHODS, scale)


def test_fig8_breakdown(benchmark, profiles, scale):
    times = benchmark(lambda: modeled_times(profiles, "L40"))
    geomeans = speedup_table(times, "spaden")
    rows = [
        {
            "vs variant": get_kernel(m).label,
            "paper": PAPER[m],
            "modeled": round(geomeans[m], 2),
        }
        for m in ("spaden-no-tc", "cusparse-bsr", "csr-warp16")
    ]
    table = format_table(rows, title=f"Figure 8 — Spaden speedup breakdown on L40 (scale={scale})")
    write_result("fig8_breakdown.txt", table)

    # ordering must hold: warp16 << bsr < no-tc < spaden
    assert geomeans["csr-warp16"] > geomeans["cusparse-bsr"] > geomeans["spaden-no-tc"] > 1.0


def test_fig8_factor_attribution(benchmark, profiles, scale):
    """The paper's narrative: w/o-TC already beats BSR (bitmap effect,
    2.29x in the paper); the tensor cores add the final 1.47x."""
    times = benchmark(lambda: modeled_times(profiles, "L40"))
    per_matrix_bsr_over_notc = [
        t["cusparse-bsr"] / t["spaden-no-tc"] for t in times.values()
    ]
    import math

    geo = math.exp(sum(math.log(v) for v in per_matrix_bsr_over_notc) / len(per_matrix_bsr_over_notc))
    # bitBSR alone beats BSR (paper: 2.29x); launch overhead compresses
    # the gap at reduced scale
    assert geo > (1.2 if scale >= 0.3 else 1.02)


def test_wallclock_breakdown_variants(benchmark, suite):
    g = suite["consph"]
    kernel = get_kernel("spaden-no-tc")
    prepared = kernel.prepare(g.csr)
    x = g.dense_vector()
    benchmark(lambda: kernel.run(prepared, x))
